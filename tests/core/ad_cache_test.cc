#include "src/core/ad_cache.h"

#include <gtest/gtest.h>

namespace pad {
namespace {

CachedAd Ad(int64_t id, double deadline) { return CachedAd{id, 1, deadline, 3072.0}; }

TEST(AdCacheTest, FifoOrder) {
  AdCache cache;
  cache.Push(Ad(1, 100.0));
  cache.Push(Ad(2, 100.0));
  cache.Push(Ad(3, 100.0));
  EXPECT_EQ(cache.PopForDisplay(0.0)->impression_id, 1);
  EXPECT_EQ(cache.PopForDisplay(0.0)->impression_id, 2);
  EXPECT_EQ(cache.PopForDisplay(0.0)->impression_id, 3);
  EXPECT_FALSE(cache.PopForDisplay(0.0).has_value());
}

TEST(AdCacheTest, PopSkipsExpired) {
  AdCache cache;
  cache.Push(Ad(1, 10.0));
  cache.Push(Ad(2, 100.0));
  const auto ad = cache.PopForDisplay(50.0);
  ASSERT_TRUE(ad.has_value());
  EXPECT_EQ(ad->impression_id, 2);
  EXPECT_EQ(cache.expired_drops(), 1);
}

TEST(AdCacheTest, DeadlineExactlyNowIsExpired) {
  AdCache cache;
  cache.Push(Ad(1, 50.0));
  EXPECT_FALSE(cache.PopForDisplay(50.0).has_value());
  EXPECT_EQ(cache.expired_drops(), 1);
}

TEST(AdCacheTest, DropExpiredScansWholeQueue) {
  AdCache cache;
  cache.Push(Ad(1, 100.0));  // Later deadline in front (cross-batch skew).
  cache.Push(Ad(2, 10.0));
  cache.Push(Ad(3, 100.0));
  EXPECT_EQ(cache.DropExpired(50.0), 1);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.PopForDisplay(60.0)->impression_id, 1);
  EXPECT_EQ(cache.PopForDisplay(60.0)->impression_id, 3);
}

TEST(AdCacheTest, InvalidateRemovesMatching) {
  AdCache cache;
  cache.Push(Ad(1, 100.0));
  cache.Push(Ad(2, 100.0));
  cache.Push(Ad(3, 100.0));
  EXPECT_EQ(cache.Invalidate({2, 99}), 1);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.invalidated_drops(), 1);
  EXPECT_EQ(cache.PopForDisplay(0.0)->impression_id, 1);
  EXPECT_EQ(cache.PopForDisplay(0.0)->impression_id, 3);
}

TEST(AdCacheTest, InvalidateEmptySetIsNoOp) {
  AdCache cache;
  cache.Push(Ad(1, 100.0));
  EXPECT_EQ(cache.Invalidate({}), 0);
  EXPECT_EQ(cache.size(), 1);
}

TEST(AdCacheTest, CountersAccumulate) {
  AdCache cache;
  cache.Push(Ad(1, 10.0));
  cache.Push(Ad(2, 10.0));
  cache.Push(Ad(3, 100.0));
  EXPECT_EQ(cache.total_pushed(), 3);
  cache.DropExpired(50.0);
  EXPECT_EQ(cache.expired_drops(), 2);
  cache.Push(Ad(4, 10.0));
  EXPECT_EQ(cache.total_pushed(), 4);
}

TEST(AdCacheTest, EmptyBehaviour) {
  AdCache cache;
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.PopForDisplay(0.0).has_value());
  EXPECT_EQ(cache.DropExpired(100.0), 0);
}

}  // namespace
}  // namespace pad
