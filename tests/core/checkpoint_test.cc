// Unit and property tests for the checkpoint journal: field-exact round
// trips, the config fingerprint's sensitivity, and the corruption contract —
// a journal truncated or bit-flipped anywhere never aborts, never resurrects
// a damaged record, and always yields the longest valid prefix.
#include "src/core/checkpoint.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/sweep.h"

namespace pad {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + name; }

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint32_t ReadU32At(const std::string& bytes, size_t pos) {
  uint32_t value = 0;
  for (int byte = 0; byte < 4; ++byte) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[pos + byte])) << (8 * byte);
  }
  return value;
}

// Frame start offsets: frames[0] is the header record, frames[k >= 1] market
// record k - 1; a final entry marks end of file.
std::vector<size_t> FrameBoundaries(const std::string& bytes) {
  std::vector<size_t> frames;
  size_t pos = 8;
  while (pos + 8 <= bytes.size()) {
    frames.push_back(pos);
    pos += 8 + ReadU32At(bytes, pos);
  }
  frames.push_back(bytes.size());
  return frames;
}

CheckpointHeader TestHeader(int num_markets) {
  CheckpointHeader header;
  header.config_fingerprint = 0x1122334455667788ull;
  header.population_seed = 42;
  header.total_users = 30;
  header.num_markets = num_markets;
  header.run_baseline = true;
  header.event_digests = true;
  return header;
}

// A record with every field distinct and salt-dependent, digests consistent
// with the metrics (the reader drops records whose digests mismatch).
MarketRecord TestRecord(int market) {
  MarketRecord record;
  record.market = market;
  const double salt = 1.0 + market;
  record.sessions = 100 + market;
  record.generate_seconds = 0.25 * salt;
  record.simulate_seconds = 1.75 * salt;
  record.event_digest = 0x9999000000000000ull + static_cast<uint64_t>(market);

  for (size_t c = 0; c < record.pad.energy.radio.by_category.size(); ++c) {
    record.pad.energy.radio.by_category[c] = {0.5 * salt + c, 0.25 * salt, 1000.0 * salt,
                                              7 + market + static_cast<int64_t>(c)};
  }
  record.pad.energy.radio.promo_time_s = 3.5 * salt;
  record.pad.energy.radio.active_time_s = 11.0 * salt;
  record.pad.energy.radio.tail_time_s = 17.0 * salt;
  record.pad.energy.local_j = 23.0 * salt;
  record.pad.ledger = {10 + market, 9 + market, 1, 2, 11 + market, 31.5 * salt, 0.5 * salt};
  record.pad.service = {40 + market, 30, 5, 5, 3};
  record.pad.scored_days = 14.0;
  for (int b = 0; b < kCalibrationBuckets; ++b) {
    record.pad.calibration[static_cast<size_t>(b)] = {20 + b, 15 + b, 0.05 * (b + market)};
  }
  record.pad.impressions_dispatched = 200 + market;
  record.pad.impressions_sold = 150 + market;
  record.pad.faults = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10 + market};

  record.baseline.energy = record.pad.energy;
  record.baseline.energy.local_j = 29.0 * salt;
  record.baseline.ledger = record.pad.ledger;
  record.baseline.ledger.billed_revenue = 37.25 * salt;
  record.baseline.service = {40 + market, 0, 40 + market, 0, 0};
  record.baseline.scored_days = 14.0;

  record.pad_digest = MetricsDigest(record.pad);
  record.baseline_digest = MetricsDigest(record.baseline);
  return record;
}

// Writes a journal with `num_markets` records and returns its bytes.
std::string WriteTestJournal(const std::string& path, int num_markets) {
  auto writer = CheckpointWriter::Create(path, TestHeader(num_markets));
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (int m = 0; m < num_markets; ++m) {
    const Status status = (*writer)->Append(TestRecord(m));
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  return ReadFileBytes(path);
}

TEST(ConfigFingerprintTest, EqualConfigsAgreeAndSemanticKnobsDiffer) {
  const PadConfig base = QuickConfig();
  EXPECT_EQ(ConfigFingerprint(base), ConfigFingerprint(QuickConfig()));

  std::vector<PadConfig> variants(8, base);
  variants[0].seed += 1;
  variants[1].population.seed += 1;
  variants[2].deadline_s *= 2.0;
  variants[3].faults.report_drop_rate = 0.01;
  variants[4].market_users = 50;
  variants[5].campaigns.arrivals_per_day += 1.0;
  variants[6].population.archetypes[0].name += "x";
  variants[7].wifi.enabled = !variants[7].wifi.enabled;
  for (size_t i = 0; i < variants.size(); ++i) {
    EXPECT_NE(ConfigFingerprint(base), ConfigFingerprint(variants[i])) << "variant " << i;
  }
}

TEST(ConfigFingerprintTest, SkewKnobsAreSemanticOnlyWhenEnabled) {
  // Enabled skew is semantic: fraction and multiplier each change traces, so
  // each must change the fingerprint (and so invalidate old journals).
  const PadConfig base = QuickConfig();
  PadConfig skewed = base;
  skewed.population.skew_heavy_fraction = 0.1;
  skewed.population.skew_rate_multiplier = 10.0;
  EXPECT_NE(ConfigFingerprint(base), ConfigFingerprint(skewed));
  PadConfig wider = skewed;
  wider.population.skew_heavy_fraction = 0.2;
  EXPECT_NE(ConfigFingerprint(skewed), ConfigFingerprint(wider));
  PadConfig heavier = skewed;
  heavier.population.skew_rate_multiplier = 20.0;
  EXPECT_NE(ConfigFingerprint(skewed), ConfigFingerprint(heavier));

  // Disabled skew (fraction == 0) changes no trace regardless of the
  // multiplier, and pre-skew journals must stay resumable: the fingerprint
  // only mixes the knobs when the skew is live.
  PadConfig disabled = base;
  disabled.population.skew_rate_multiplier = 10.0;  // Inert: fraction is 0.
  EXPECT_EQ(ConfigFingerprint(base), ConfigFingerprint(disabled));
}

TEST(CheckpointTest, RoundTripIsFieldExact) {
  const std::string path = TempPath("ckpt_roundtrip.ckpt");
  WriteTestJournal(path, 3);

  const StatusOr<CheckpointContents> read = ReadCheckpoint(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->has_header);
  EXPECT_FALSE(read->truncated());
  const CheckpointHeader expected_header = TestHeader(3);
  EXPECT_EQ(expected_header.config_fingerprint, read->header.config_fingerprint);
  EXPECT_EQ(expected_header.population_seed, read->header.population_seed);
  EXPECT_EQ(expected_header.total_users, read->header.total_users);
  EXPECT_EQ(expected_header.num_markets, read->header.num_markets);
  EXPECT_EQ(expected_header.run_baseline, read->header.run_baseline);
  EXPECT_EQ(expected_header.event_digests, read->header.event_digests);

  ASSERT_EQ(3u, read->markets.size());
  for (int m = 0; m < 3; ++m) {
    const MarketRecord expected = TestRecord(m);
    const MarketRecord& actual = read->markets[static_cast<size_t>(m)];
    EXPECT_EQ(expected.market, actual.market);
    EXPECT_EQ(expected.sessions, actual.sessions);
    EXPECT_EQ(expected.event_digest, actual.event_digest);
    // Digest equality is field-by-field bit equality over every metric.
    EXPECT_EQ(expected.pad_digest, actual.pad_digest);
    EXPECT_EQ(MetricsDigest(expected.pad), MetricsDigest(actual.pad));
    EXPECT_EQ(MetricsDigest(expected.baseline), MetricsDigest(actual.baseline));
    // Spot-check IEEE exactness of doubles after the round trip.
    EXPECT_EQ(expected.pad.ledger.billed_revenue, actual.pad.ledger.billed_revenue);
    EXPECT_EQ(expected.generate_seconds, actual.generate_seconds);
    EXPECT_EQ(expected.simulate_seconds, actual.simulate_seconds);
  }
}

TEST(CheckpointTest, MissingAndForeignFiles) {
  const StatusOr<CheckpointContents> missing = ReadCheckpoint(TempPath("ckpt_missing.ckpt"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(StatusCode::kNotFound, missing.status().code());

  const std::string foreign = TempPath("ckpt_foreign.txt");
  WriteFileBytes(foreign, "users,days\n100,21\n");
  const StatusOr<CheckpointContents> not_journal = ReadCheckpoint(foreign);
  ASSERT_FALSE(not_journal.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, not_journal.status().code());
}

TEST(CheckpointTest, EveryTruncationPointYieldsTheValidPrefix) {
  const std::string path = TempPath("ckpt_trunc.ckpt");
  const std::string bytes = WriteTestJournal(path, 3);
  const std::vector<size_t> frames = FrameBoundaries(bytes);
  ASSERT_EQ(5u, frames.size());  // header + 3 markets + EOF sentinel.

  const std::string truncated_path = TempPath("ckpt_trunc_cut.ckpt");
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFileBytes(truncated_path, bytes.substr(0, cut));
    const StatusOr<CheckpointContents> read = ReadCheckpoint(truncated_path);
    ASSERT_TRUE(read.ok()) << "cut at " << cut << ": " << read.status().ToString();
    // Complete frames strictly below the cut survive; nothing else does.
    size_t complete_frames = 0;
    while (complete_frames + 1 < frames.size() && frames[complete_frames + 1] <= cut) {
      ++complete_frames;
    }
    EXPECT_EQ(complete_frames >= 1, read->has_header) << "cut at " << cut;
    const size_t expected_markets = complete_frames > 0 ? complete_frames - 1 : 0;
    ASSERT_EQ(expected_markets, read->markets.size()) << "cut at " << cut;
    for (size_t m = 0; m < expected_markets; ++m) {
      EXPECT_EQ(static_cast<int32_t>(m), read->markets[m].market);
    }
    // A mid-frame cut is reported; a cut exactly at a frame boundary (or at
    // the bare magic) is a clean end of journal.
    const bool at_boundary =
        cut == 8 || (complete_frames >= 1 && frames[complete_frames] == cut);
    EXPECT_EQ(!at_boundary, read->truncated()) << "cut at " << cut;
    EXPECT_LE(read->valid_bytes, static_cast<int64_t>(cut));
  }
}

TEST(CheckpointTest, BitFlipsNeverAbortAndNeverResurrectDamagedRecords) {
  const std::string path = TempPath("ckpt_flip.ckpt");
  const std::string bytes = WriteTestJournal(path, 3);
  const std::vector<size_t> frames = FrameBoundaries(bytes);

  // Every frame's length, CRC, and first payload byte, plus seeded random
  // offsets across the whole file.
  std::vector<size_t> offsets = {0, 3, 7};
  for (size_t f = 0; f + 1 < frames.size(); ++f) {
    offsets.push_back(frames[f]);      // Length field.
    offsets.push_back(frames[f] + 4);  // CRC field.
    offsets.push_back(frames[f] + 8);  // Payload type byte.
  }
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<size_t> pick(0, bytes.size() - 1);
  for (int i = 0; i < 64; ++i) {
    offsets.push_back(pick(rng));
  }

  const std::string flipped_path = TempPath("ckpt_flip_cut.ckpt");
  for (const size_t offset : offsets) {
    std::string flipped = bytes;
    flipped[offset] = static_cast<char>(flipped[offset] ^ 0xff);
    WriteFileBytes(flipped_path, flipped);
    const StatusOr<CheckpointContents> read = ReadCheckpoint(flipped_path);
    if (offset < 8) {
      // Magic damage: the file is no longer recognizably ours; refusing to
      // resume (rather than recreating) protects foreign files.
      ASSERT_FALSE(read.ok()) << "offset " << offset;
      EXPECT_EQ(StatusCode::kInvalidArgument, read.status().code()) << "offset " << offset;
      continue;
    }
    ASSERT_TRUE(read.ok()) << "offset " << offset << ": " << read.status().ToString();
    // The frame containing the flip — and everything after it — must be gone;
    // frames before it must survive intact.
    size_t damaged_frame = 0;
    while (damaged_frame + 1 < frames.size() && frames[damaged_frame + 1] <= offset) {
      ++damaged_frame;
    }
    EXPECT_EQ(damaged_frame >= 1, read->has_header) << "offset " << offset;
    const size_t expected_markets = damaged_frame > 0 ? damaged_frame - 1 : 0;
    ASSERT_EQ(expected_markets, read->markets.size()) << "offset " << offset;
    for (size_t m = 0; m < expected_markets; ++m) {
      const MarketRecord expected = TestRecord(static_cast<int>(m));
      EXPECT_EQ(expected.market, read->markets[m].market);
      EXPECT_EQ(expected.pad_digest, read->markets[m].pad_digest);
      EXPECT_EQ(expected.pad_digest, MetricsDigest(read->markets[m].pad));
    }
    EXPECT_TRUE(read->truncated()) << "offset " << offset;
    EXPECT_LE(read->valid_bytes, static_cast<int64_t>(frames[damaged_frame]));
  }
}

TEST(CheckpointTest, ResumeTruncatesTheTornTailAndAppends) {
  const std::string path = TempPath("ckpt_resume.ckpt");
  {
    // A 3-market run of which only 2 markets landed before the crash.
    auto writer = CheckpointWriter::Create(path, TestHeader(3));
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)->Append(TestRecord(0)).ok());
    ASSERT_TRUE((*writer)->Append(TestRecord(1)).ok());
  }
  // Crash mid-append: garbage past the last fsync'd record.
  std::string bytes = ReadFileBytes(path);
  const size_t intact_size = bytes.size();
  bytes += std::string("\x13\x37garbage-torn-tail", 19);
  WriteFileBytes(path, bytes);

  const StatusOr<CheckpointContents> before = ReadCheckpoint(path);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->truncated());
  EXPECT_EQ(static_cast<int64_t>(intact_size), before->valid_bytes);
  ASSERT_EQ(2u, before->markets.size());

  auto writer = CheckpointWriter::Resume(path, before->valid_bytes);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append(TestRecord(2)).ok());

  const StatusOr<CheckpointContents> after = ReadCheckpoint(path);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->truncated());
  ASSERT_EQ(3u, after->markets.size());
  EXPECT_EQ(2, after->markets[2].market);
  EXPECT_EQ(TestRecord(2).pad_digest, after->markets[2].pad_digest);
}

TEST(CheckpointTest, DuplicateOrOutOfRangeMarketsAreCutNotMerged) {
  const std::string path = TempPath("ckpt_dup.ckpt");
  {
    auto writer = CheckpointWriter::Create(path, TestHeader(2));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(TestRecord(0)).ok());
    ASSERT_TRUE((*writer)->Append(TestRecord(0)).ok());  // Duplicate index.
  }
  const StatusOr<CheckpointContents> dup = ReadCheckpoint(path);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(1u, dup->markets.size());
  EXPECT_TRUE(dup->truncated());

  {
    auto writer = CheckpointWriter::Create(path, TestHeader(2));
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(TestRecord(5)).ok());  // Out of range.
  }
  const StatusOr<CheckpointContents> range = ReadCheckpoint(path);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(0u, range->markets.size());
  EXPECT_TRUE(range->truncated());
}

TEST(OpenOrResumeJournalTest, FreshResumeAndRefusalPaths) {
  const std::string path = TempPath("ckpt_open_resume.ckpt");
  std::remove(path.c_str());
  const CheckpointHeader header = TestHeader(3);

  // Fresh: no file yet — a writer with an empty record set, file created.
  {
    StatusOr<ResumedJournal> fresh = OpenOrResumeJournal(path, header, /*fsync_each=*/true);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_TRUE(fresh->records.empty());
    ASSERT_NE(nullptr, fresh->writer);
    ASSERT_TRUE(fresh->writer->Append(TestRecord(0)).ok());
  }

  // Resume: the surviving record comes back and appends continue after it.
  {
    StatusOr<ResumedJournal> resumed = OpenOrResumeJournal(path, header, true);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ASSERT_EQ(1u, resumed->records.size());
    EXPECT_EQ(0, resumed->records[0].market);
    EXPECT_EQ(TestRecord(0).pad_digest, resumed->records[0].pad_digest);
    ASSERT_TRUE(resumed->writer->Append(TestRecord(1)).ok());
  }
  const StatusOr<CheckpointContents> contents = ReadCheckpoint(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(2u, contents->markets.size());

  // Resume with a torn tail: the tail is dropped, intact records survive.
  const std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes + "torn");
  {
    StatusOr<ResumedJournal> healed = OpenOrResumeJournal(path, header, true);
    ASSERT_TRUE(healed.ok()) << healed.status().ToString();
    EXPECT_EQ(2u, healed->records.size());
  }

  // A different experiment's header: refused, file untouched.
  CheckpointHeader other = header;
  other.config_fingerprint ^= 1;
  StatusOr<ResumedJournal> stale = OpenOrResumeJournal(path, other, true);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, stale.status().code());

  // Mismatched engine result flags are a distinct refusal.
  CheckpointHeader flags = header;
  flags.event_digests = !flags.event_digests;
  StatusOr<ResumedJournal> flag_mismatch = OpenOrResumeJournal(path, flags, true);
  ASSERT_FALSE(flag_mismatch.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, flag_mismatch.status().code());

  // A foreign file at the path: the non-NotFound read error propagates; the
  // file is never clobbered by a "fresh" create.
  const std::string foreign = TempPath("ckpt_open_foreign.csv");
  WriteFileBytes(foreign, "label,users\nrun,100\n");
  StatusOr<ResumedJournal> refused = OpenOrResumeJournal(foreign, header, true);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(StatusCode::kInvalidArgument, refused.status().code());
  EXPECT_EQ("label,users\nrun,100\n", ReadFileBytes(foreign));
}

TEST(FsyncParentDirTest, SyncsRealDirsAndReportsMissingOnes) {
  EXPECT_TRUE(FsyncParentDir(TempPath("any_name.ckpt")).ok());
  EXPECT_TRUE(FsyncParentDir("bare_filename_no_slash").ok());  // "." parent.
  const Status missing = FsyncParentDir("/nonexistent_dir_xyz/file.ckpt");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(StatusCode::kUnavailable, missing.code());
}

TEST(CheckpointTest, UnsupportedSchemaVersionIsARefusalNotACrash) {
  const std::string path = TempPath("ckpt_schema.ckpt");
  WriteTestJournal(path, 1);
  std::string bytes = ReadFileBytes(path);

  // Patch the header's schema_version (payload offset 1, little-endian u32)
  // and recompute the frame CRC so the record still validates.
  const size_t frame = 8;
  const uint32_t payload_len = ReadU32At(bytes, frame);
  bytes[frame + 8 + 1] = 99;
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0xedb88320u : 0u);
    }
    table[i] = crc;
  }
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < payload_len; ++i) {
    crc = (crc >> 8) ^
          table[(crc ^ static_cast<unsigned char>(bytes[frame + 8 + i])) & 0xffu];
  }
  crc ^= 0xffffffffu;
  for (int byte = 0; byte < 4; ++byte) {
    bytes[frame + 4 + static_cast<size_t>(byte)] =
        static_cast<char>((crc >> (8 * byte)) & 0xffu);
  }
  WriteFileBytes(path, bytes);

  const StatusOr<CheckpointContents> read = ReadCheckpoint(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(StatusCode::kFailedPrecondition, read.status().code());
}

}  // namespace
}  // namespace pad
