#include "src/core/pad_client.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/units.h"
#include "src/prediction/predictors.h"

namespace pad {
namespace {

PadConfig TestConfig() {
  PadConfig config;
  config.prediction_window_s = kHour;
  config.deadline_s = kHour;
  config.ad_bytes = 3.0 * kKiB;
  config.slot_report_bytes = 400.0;
  config.invalidation_bytes = 16.0;
  return config;
}

Exchange RichExchange() {
  Campaign campaign;
  campaign.campaign_id = 1;
  campaign.arrival_time = 0.0;
  campaign.bid_per_impression = 0.002;
  campaign.target_impressions = 1'000'000;
  campaign.display_deadline_s = kHour;
  return Exchange(ExchangeConfig{}, {campaign});
}

CachedAd Ad(int64_t id, double deadline) { return CachedAd{id, 1, deadline, 3.0 * kKiB}; }

TEST(PadClientTest, StartWindowComputesRates) {
  const PadConfig config = TestConfig();
  auto predictor = std::make_unique<OraclePredictor>(std::vector<int>{6, 12});
  PadClient client(0, /*segment=*/0, config, std::move(predictor));
  client.StartWindow(0.0, 0);
  EXPECT_DOUBLE_EQ(client.predicted_rate(), 6.0 / kHour);
  client.StartWindow(kHour, 1);
  EXPECT_DOUBLE_EQ(client.predicted_rate(), 12.0 / kHour);
}

TEST(PadClientTest, ObservationsFeedPredictor) {
  const PadConfig config = TestConfig();
  auto predictor = std::make_unique<LastValuePredictor>();
  PadClient client(0, /*segment=*/0, config, std::move(predictor));
  Exchange exchange = RichExchange();
  ServiceStats stats;

  client.StartWindow(0.0, 0);
  // Three slots in window 0.
  client.OnSlot(10.0, exchange, stats);
  client.OnSlot(20.0, exchange, stats);
  client.OnSlot(30.0, exchange, stats);
  client.StartWindow(kHour, 1);
  // LastValue now predicts 3 slots/window.
  EXPECT_NEAR(client.predicted_rate(), 3.0 / kHour, 1e-12);
}

TEST(PadClientTest, CacheServedSlotCausesNoRadioTraffic) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange = RichExchange();
  ServiceStats stats;

  client.ReceiveAds(0.0, std::vector<CachedAd>{Ad(500, kHour)});
  // The pending bundle downloads at the slot (one prefetch transfer), and
  // the display itself adds nothing.
  client.OnSlot(10.0, exchange, stats);
  EXPECT_EQ(stats.served_from_cache, 1);
  EXPECT_EQ(stats.fallback_fetches, 0);
  const EnergyReport& report = client.radio_report();
  EXPECT_EQ(report.For(TrafficCategory::kAdPrefetch).transfers, 1);
  EXPECT_EQ(report.For(TrafficCategory::kAdFetch).transfers, 0);
}

TEST(PadClientTest, SecondSlotServedWithNoFurtherTraffic) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange = RichExchange();
  ServiceStats stats;

  client.ReceiveAds(0.0, std::vector<CachedAd>{Ad(500, kHour), Ad(501, kHour)});
  client.OnSlot(10.0, exchange, stats);
  client.OnSlot(20.0, exchange, stats);
  EXPECT_EQ(stats.served_from_cache, 2);
  // Both ads arrived in the single bundle fetch.
  EXPECT_EQ(client.radio_report().For(TrafficCategory::kAdPrefetch).transfers, 1);
}

TEST(PadClientTest, DryCacheFallsBackToOnDemand) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange = RichExchange();
  ServiceStats stats;

  client.OnSlot(10.0, exchange, stats);
  EXPECT_EQ(stats.fallback_fetches, 1);
  EXPECT_EQ(stats.served_from_cache, 0);
  EXPECT_EQ(client.radio_report().For(TrafficCategory::kAdFetch).transfers, 1);
  // The fallback sale displays instantly and bills.
  EXPECT_EQ(exchange.ledger().totals().billed, 1);
}

TEST(PadClientTest, NoDemandMeansUnfilledSlot) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange(ExchangeConfig{}, {});  // Empty market.
  ServiceStats stats;
  client.OnSlot(10.0, exchange, stats);
  EXPECT_EQ(stats.unfilled, 1);
  EXPECT_EQ(client.radio_report().total_transfers(), 0);
}

TEST(PadClientTest, ExpiredPendingAdsNeverDownloaded) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange = RichExchange();
  ServiceStats stats;

  client.ReceiveAds(0.0, std::vector<CachedAd>{Ad(500, 100.0)});
  // Slot long after the pending ad's deadline: bundle is dropped for free,
  // slot falls back to on-demand.
  client.OnSlot(5000.0, exchange, stats);
  EXPECT_EQ(stats.fallback_fetches, 1);
  EXPECT_EQ(client.radio_report().For(TrafficCategory::kAdPrefetch).transfers, 0);
}

TEST(PadClientTest, SlotReportRidesNextTransfer) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());

  client.StartWindow(0.0, 0);
  // No traffic yet: the report is pending, not sent.
  EXPECT_EQ(client.radio_report().For(TrafficCategory::kSlotReport).transfers, 0);
  // A content transfer flushes it at the same instant (shared wakeup).
  client.OnContentTransfer(Transfer{.request_time = 100.0,
                                    .bytes = 1000.0,
                                    .direction = Direction::kDownlink,
                                    .category = TrafficCategory::kAppContent});
  const EnergyReport& report = client.radio_report();
  EXPECT_EQ(report.For(TrafficCategory::kSlotReport).transfers, 1);
  EXPECT_DOUBLE_EQ(report.For(TrafficCategory::kSlotReport).bytes, 400.0);
}

TEST(PadClientTest, UnsentReportSupersededNextWindow) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  client.StartWindow(0.0, 0);
  client.StartWindow(kHour, 1);  // Idle client: first report never sent.
  client.OnContentTransfer(Transfer{.request_time = 2.0 * kHour,
                                    .bytes = 1000.0,
                                    .direction = Direction::kDownlink,
                                    .category = TrafficCategory::kAppContent});
  // Only one report's bytes went out.
  EXPECT_DOUBLE_EQ(client.radio_report().For(TrafficCategory::kSlotReport).bytes, 400.0);
}

TEST(PadClientTest, SyncCacheInvalidatesFetchedAndPending) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange = RichExchange();
  ServiceStats stats;

  // Fetch ad 1 into the cache (slot at t=10 displays ad 1) and leave ad 2 cached.
  client.ReceiveAds(0.0, std::vector<CachedAd>{Ad(1, kHour), Ad(2, kHour)});
  client.OnSlot(10.0, exchange, stats);
  EXPECT_EQ(client.cache_size(), 1);
  // Ad 3 still pending (never fetched).
  client.ReceiveAds(20.0, std::vector<CachedAd>{Ad(3, kHour)});
  EXPECT_EQ(client.cache_size(), 2);

  client.SyncCache(30.0, {2, 3});
  EXPECT_EQ(client.cache_size(), 0);
}

TEST(PadClientTest, InvalidationBytesChargedOnlyForFetchedReplicas) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange = RichExchange();
  ServiceStats stats;

  client.ReceiveAds(0.0, std::vector<CachedAd>{Ad(1, kHour), Ad(2, kHour)});
  client.OnSlot(10.0, exchange, stats);  // Fetches both, displays ad 1.
  client.SyncCache(30.0, {2});
  // Invalidation bytes are pending; flush them via a fallback fetch.
  client.OnSlot(40.0, exchange, stats);
  EXPECT_DOUBLE_EQ(client.radio_report().For(TrafficCategory::kSlotReport).bytes, 16.0);
}

TEST(PadClientTest, FinishRadioClosesTail) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange = RichExchange();
  ServiceStats stats;
  client.OnSlot(10.0, exchange, stats);  // One fallback fetch.
  client.FinishRadio(10.0 * kHour);
  EXPECT_NEAR(client.radio_report().total_energy_j(),
              config.radio.IsolatedTransferEnergy(config.ad_bytes, false), 1e-9);
}

// --- Fault-injection paths (core/faults.h) --------------------------------

TEST(PadClientTest, FaultFreeReportedRateEqualsPredicted) {
  const PadConfig config = TestConfig();
  PadClient client(0, /*segment=*/0, config,
                   std::make_unique<OraclePredictor>(std::vector<int>{6, 12}));
  client.StartWindow(0.0, 0);
  EXPECT_DOUBLE_EQ(client.reported_rate(), client.predicted_rate());
  client.StartWindow(kHour, 1);
  EXPECT_DOUBLE_EQ(client.reported_rate(), client.predicted_rate());
  EXPECT_DOUBLE_EQ(client.reported_var_rate(), client.predicted_var_rate());
}

TEST(PadClientTest, AlwaysDroppedReportsLeaveServerViewAtConservativePrior) {
  PadConfig config = TestConfig();
  config.faults.report_drop_rate = 1.0;
  PadClient client(0, /*segment=*/0, config,
                   std::make_unique<OraclePredictor>(std::vector<int>{6, 12}));
  client.StartWindow(0.0, 0);
  client.StartWindow(kHour, 1);
  // The client predicts plenty of slots, but the server never hears it: the
  // visible rate decays to (stays at) the zero prior, so it is sold nothing.
  EXPECT_GT(client.predicted_rate(), 0.0);
  EXPECT_DOUBLE_EQ(client.reported_rate(), 0.0);
  EXPECT_EQ(client.fault_stats().reports_dropped, 2);
  EXPECT_EQ(client.fault_stats().stale_windows, 2);
}

TEST(PadClientTest, DelayedReportArrivesOneWindowLate) {
  PadConfig config = TestConfig();
  config.faults.report_delay_rate = 1.0;
  PadClient client(0, /*segment=*/0, config,
                   std::make_unique<OraclePredictor>(std::vector<int>{6, 12}));
  client.StartWindow(0.0, 0);
  EXPECT_DOUBLE_EQ(client.reported_rate(), 0.0);  // Window-0 report in flight.
  client.StartWindow(kHour, 1);
  // The delayed window-0 report (6 slots/h) lands at the boundary; the
  // window-1 report (12 slots/h) is itself delayed.
  EXPECT_DOUBLE_EQ(client.reported_rate(), 6.0 / kHour);
  EXPECT_DOUBLE_EQ(client.predicted_rate(), 12.0 / kHour);
  EXPECT_EQ(client.fault_stats().reports_delayed, 2);
}

TEST(PadClientTest, FailedBundleFetchChargesBytesWithoutFillingCache) {
  PadConfig config = TestConfig();
  config.faults.fetch_failure_rate = 1.0;
  config.faults.fetch_max_retries = 10;
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange = RichExchange();
  ServiceStats stats;

  client.ReceiveAds(0.0, std::vector<CachedAd>{Ad(500, kHour)});
  client.OnSlot(10.0, exchange, stats);
  // The download attempt failed: its bytes were spent on the radio, the
  // cache stayed dry, and the slot fell back to an on-demand sale.
  EXPECT_EQ(client.fault_stats().fetch_failures, 1);
  EXPECT_EQ(stats.served_from_cache, 0);
  EXPECT_EQ(stats.fallback_fetches, 1);
  const EnergyReport& report = client.radio_report();
  EXPECT_EQ(report.For(TrafficCategory::kAdPrefetch).transfers, 1);
  EXPECT_DOUBLE_EQ(report.For(TrafficCategory::kAdPrefetch).bytes, 3.0 * kKiB);
  EXPECT_EQ(report.For(TrafficCategory::kAdFetch).transfers, 1);
}

TEST(PadClientTest, RetryBudgetAbandonsTheBundle) {
  PadConfig config = TestConfig();
  config.faults.fetch_failure_rate = 1.0;
  config.faults.fetch_max_retries = 2;
  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());

  client.ReceiveAds(0.0, std::vector<CachedAd>{Ad(500, kHour)});
  const Transfer content{.request_time = 10.0,
                         .bytes = 1000.0,
                         .direction = Direction::kDownlink,
                         .category = TrafficCategory::kAppContent};
  // Three wakeups: initial attempt plus the two budgeted retries, then the
  // bundle is dropped rather than wedging the queue forever.
  for (double t : {10.0, 20.0, 30.0, 40.0}) {
    Transfer transfer = content;
    transfer.request_time = t;
    client.OnContentTransfer(transfer);
  }
  EXPECT_EQ(client.fault_stats().fetch_failures, 3);
  EXPECT_EQ(client.fault_stats().fetch_retries, 2);
  EXPECT_EQ(client.fault_stats().bundles_abandoned, 1);
  EXPECT_EQ(client.cache_size(), 0);
  // The fourth wakeup had nothing to attempt: exactly three failed prefetch
  // transfers hit the radio.
  EXPECT_EQ(client.radio_report().For(TrafficCategory::kAdPrefetch).transfers, 3);
}

TEST(PadClientTest, OfflineClientServesCacheButCannotFetch) {
  PadConfig config = TestConfig();
  config.faults.offline_rate = 0.5;
  config.faults.offline_window_s = 600.0;
  config.seed = 99;
  // Probe the plan (same draws as the client's own) for an online window
  // followed by a later offline window.
  const FaultPlan plan(config.faults, config.seed);
  int online_w = -1;
  int offline_w = -1;
  for (int w = 0; w < 64; ++w) {
    const double t = (static_cast<double>(w) + 0.5) * 600.0;
    if (!plan.OfflineAt(0, t) && online_w < 0) {
      online_w = w;
    } else if (plan.OfflineAt(0, t) && online_w >= 0) {
      offline_w = w;
      break;
    }
  }
  ASSERT_GE(online_w, 0);
  ASSERT_GT(offline_w, online_w);
  const double t_online = (static_cast<double>(online_w) + 0.5) * 600.0;
  const double t_offline = (static_cast<double>(offline_w) + 0.5) * 600.0;

  PadClient client(0, /*segment=*/0, config, std::make_unique<LastValuePredictor>());
  Exchange exchange = RichExchange();
  ServiceStats stats;

  // While online: the bundle downloads and one ad displays.
  const double deadline = t_offline + kHour;
  client.ReceiveAds(t_online, std::vector<CachedAd>{Ad(1, deadline), Ad(2, deadline)});
  client.OnSlot(t_online, exchange, stats);
  EXPECT_EQ(stats.served_from_cache, 1);

  // While offline: the remaining cached ad still serves (purely local)...
  client.OnSlot(t_offline, exchange, stats);
  EXPECT_EQ(stats.served_from_cache, 2);
  // ...but with the cache dry, the fallback fetch is unreachable: the slot
  // goes unfilled instead of selling in real time.
  const int64_t sold_before = exchange.ledger().totals().sold;
  client.OnSlot(t_offline + 1.0, exchange, stats);
  EXPECT_EQ(stats.unfilled, 1);
  EXPECT_EQ(client.fault_stats().offline_fetch_misses, 1);
  EXPECT_EQ(exchange.ledger().totals().sold, sold_before);
}

}  // namespace
}  // namespace pad
