// Hot-path equivalence battery: locks the optimized per-user kernel to the
// exact digests produced by the pre-optimization implementation.
//
// The arena-backed event core, batched RRC folds, probability memo, and
// scratch-buffer reuse are all claimed to be *pure* optimizations — every
// metric and every event log byte-identical to the straightforward code they
// replaced. This test is that claim, enforced: each battery case (threads ×
// schedule × faults × skew × wifi × segments) must reproduce the golden
// combined digests captured from the seed implementation, across worker
// counts, both schedule modes, and different steal seeds.
//
// If you *intended* to change simulation semantics, regenerate the constants
// by building with -DADPAD_REGENERATE_GOLDEN and running this test; it
// prints the new literals.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/core/event_log.h"
#include "src/core/pad_simulation.h"
#include "src/core/shard_engine.h"
#include "src/core/sweep.h"

namespace pad {
namespace {

PadConfig BatteryBase() {
  PadConfig config = QuickConfig();  // 40 users, 10 days, 1 warmup week.
  config.seed = 1234;
  config.population.seed = 42;
  config.campaigns.seed = 7;
  return config;
}

struct BatteryCase {
  std::string name;
  PadConfig config;
  // Golden digests captured from the pre-optimization seed implementation
  // (threads=2, stealing). Execution knobs must not change them.
  uint64_t pad_digest = 0;
  uint64_t baseline_digest = 0;
  uint64_t event_digest = 0;
  int64_t total_sessions = 0;
};

std::vector<BatteryCase> Battery() {
  std::vector<BatteryCase> cases;
  {
    BatteryCase c{"mono", BatteryBase(), 0x0bd22f3f8b801f63ull, 0xcd9a87e83179497dull,
                  0x50c04d415d743c1dull, 13407};
    cases.push_back(c);
  }
  {
    BatteryCase c{"sharded", BatteryBase(), 0x90c602bc1d6950b0ull, 0x5dcce82af6fc94b0ull,
                  0x1732e8f5d7ceefffull, 13407};
    c.config.market_users = 10;
    cases.push_back(c);
  }
  {
    BatteryCase c{"faults", BatteryBase(), 0x3decfc942905dadcull, 0x5dcce82af6fc94b0ull,
                  0x2c1a247d0f339e88ull, 13407};
    c.config.market_users = 10;
    c.config.faults.report_drop_rate = 0.10;
    c.config.faults.report_delay_rate = 0.05;
    c.config.faults.fetch_failure_rate = 0.10;
    c.config.faults.sync_miss_rate = 0.10;
    c.config.faults.offline_rate = 0.05;
    cases.push_back(c);
  }
  {
    BatteryCase c{"skew", BatteryBase(), 0xa0e3027c56ddd635ull, 0x7f3b2d12e4dc923full,
                  0xd1a2b4efe27c5d66ull, 34981};
    c.config.market_users = 10;
    c.config.population.skew_heavy_fraction = 0.25;
    c.config.population.skew_rate_multiplier = 8.0;
    cases.push_back(c);
  }
  {
    BatteryCase c{"wifi", BatteryBase(), 0xb473530969992a60ull, 0x542deea7c7ba8816ull,
                  0xd25bab6aab3b0bceull, 13407};
    c.config.wifi.enabled = true;
    c.config.market_users = 13;  // Uneven final market.
    cases.push_back(c);
  }
  {
    BatteryCase c{"oracle", BatteryBase(), 0xa51b9ba171199907ull, 0xcd9a87e83179497dull,
                  0xfbeb05c982ce32e1ull, 13407};
    c.config.use_noisy_oracle = true;
    c.config.oracle_noise_sigma = 1.0;
    cases.push_back(c);
  }
  {
    BatteryCase c{"segments", BatteryBase(), 0x29a0707fae8cd337ull, 0x636ac7e57a775162ull,
                  0xc7edc6025a3be034ull, 13407};
    c.config.population.num_segments = 3;
    c.config.market_users = 13;
    cases.push_back(c);
  }
  {
    BatteryCase c{"kitchen_sink", BatteryBase(), 0xdeb7819cbba1e922ull, 0x8e84fd4f53f5728bull,
                  0x28ce6216029a42b3ull, 24070};
    c.config.population.num_segments = 2;
    c.config.market_users = 7;
    c.config.wifi.enabled = true;
    c.config.population.skew_heavy_fraction = 0.25;
    c.config.population.skew_rate_multiplier = 4.0;
    c.config.faults.report_drop_rate = 0.05;
    c.config.faults.fetch_failure_rate = 0.05;
    c.config.faults.offline_rate = 0.05;
    cases.push_back(c);
  }
  return cases;
}

ShardedComparison RunCase(const PadConfig& config, int threads, ScheduleMode schedule,
                          uint64_t steal_seed) {
  ShardEngineOptions options;
  options.threads = threads;
  options.schedule = schedule;
  options.steal_seed = steal_seed;
  options.event_digests = true;
  return RunShardedComparison(config, options);
}

TEST(HotPathEquivalenceTest, BatteryMatchesGoldenDigests) {
  for (const BatteryCase& c : Battery()) {
    SCOPED_TRACE(c.name);
    const ShardedComparison result = RunCase(c.config, /*threads=*/2,
                                             ScheduleMode::kStealing, /*steal_seed=*/0);
#ifdef ADPAD_REGENERATE_GOLDEN
    std::printf("{\"%s\", ..., 0x%016llxull, 0x%016llxull, 0x%016llxull, %lld},\n",
                c.name.c_str(), (unsigned long long)result.combined_pad_digest,
                (unsigned long long)result.combined_baseline_digest,
                (unsigned long long)result.combined_event_digest,
                (long long)result.total_sessions);
#else
    EXPECT_EQ(result.combined_pad_digest, c.pad_digest);
    EXPECT_EQ(result.combined_baseline_digest, c.baseline_digest);
    EXPECT_EQ(result.combined_event_digest, c.event_digest);
    EXPECT_EQ(result.total_sessions, c.total_sessions);
#endif
  }
#ifdef ADPAD_REGENERATE_GOLDEN
  GTEST_SKIP() << "regeneration mode: constants printed above";
#endif
}

// Execution knobs — worker count, schedule mode, steal interleaving — must
// never leak into results. Sweep them over the cases whose market structure
// gives the scheduler something to do (many markets, skewed market weights).
TEST(HotPathEquivalenceTest, DigestsInvariantAcrossThreadsAndSchedule) {
  const std::vector<BatteryCase> battery = Battery();
  for (const BatteryCase& c : battery) {
    if (c.name != "sharded" && c.name != "skew" && c.name != "kitchen_sink") {
      continue;
    }
    SCOPED_TRACE(c.name);
    struct Exec {
      int threads;
      ScheduleMode schedule;
      uint64_t steal_seed;
    };
    const Exec matrix[] = {
        {1, ScheduleMode::kStatic, 0},
        {1, ScheduleMode::kStealing, 0},
        {4, ScheduleMode::kStatic, 0},
        {4, ScheduleMode::kStealing, 17},
        {3, ScheduleMode::kStealing, 999},
    };
    for (const Exec& exec : matrix) {
      SCOPED_TRACE(testing::Message() << "threads=" << exec.threads << " schedule="
                                      << (exec.schedule == ScheduleMode::kStealing ? "stealing"
                                                                                   : "static")
                                      << " steal_seed=" << exec.steal_seed);
      const ShardedComparison result =
          RunCase(c.config, exec.threads, exec.schedule, exec.steal_seed);
      EXPECT_EQ(result.combined_pad_digest, c.pad_digest);
      EXPECT_EQ(result.combined_baseline_digest, c.baseline_digest);
      EXPECT_EQ(result.combined_event_digest, c.event_digest);
      EXPECT_EQ(result.total_sessions, c.total_sessions);
    }
  }
}

// The monolithic entry points (no shard engine) must agree with their own
// golden digests, and the SimContext overloads must be byte-identical to the
// legacy PadConfig convenience overloads they wrap.
TEST(HotPathEquivalenceTest, DirectPathMatchesGoldenAndSimContextOverloads) {
  const PadConfig config = BatteryBase();
  const SimContext context = MakeSimContext(config);
  const SimInputs inputs = GenerateInputs(context);

  Comparison comparison;
  comparison.baseline = RunBaseline(context, inputs);
  EventLog log;
  comparison.pad = RunPad(context, inputs, &log);

#ifdef ADPAD_REGENERATE_GOLDEN
  std::printf("direct: comparison=0x%016llxull event=0x%016llxull\n",
              (unsigned long long)ComparisonDigest(comparison),
              (unsigned long long)log.Digest());
  GTEST_SKIP() << "regeneration mode: constants printed above";
#else
  EXPECT_EQ(ComparisonDigest(comparison), 0xa827a5589bc237fbull);
  EXPECT_EQ(log.Digest(), 0xfa647e684c57d3feull);

  // Legacy overloads route through MakeSimContext and must match exactly.
  Comparison legacy;
  legacy.baseline = RunBaseline(config, GenerateInputs(config));
  EventLog legacy_log;
  legacy.pad = RunPad(config, inputs, &legacy_log);
  EXPECT_EQ(ComparisonDigest(legacy), ComparisonDigest(comparison));
  EXPECT_EQ(legacy_log.Digest(), log.Digest());
#endif
}

}  // namespace
}  // namespace pad
