// Targeting and diversity behaviour of the PAD server's dispatcher.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/core/pad_server.h"
#include "src/prediction/predictors.h"

namespace pad {
namespace {

struct Harness {
  // clients_per_segment[s] clients in each segment, each predicting
  // `slots_per_window` slots with an oracle.
  Harness(std::vector<int> clients_per_segment, int slots_per_window, PadConfig config_in,
          std::vector<Campaign> campaigns)
      : config(std::move(config_in)) {
    config.population.num_segments = static_cast<int>(clients_per_segment.size());
    ExchangeConfig exchange_config;
    exchange_config.num_segments = config.population.num_segments;
    exchange = std::make_unique<Exchange>(exchange_config, std::move(campaigns));
    int id = 0;
    for (size_t s = 0; s < clients_per_segment.size(); ++s) {
      for (int c = 0; c < clients_per_segment[s]; ++c) {
        clients.push_back(std::make_unique<PadClient>(
            id++, static_cast<int>(s), config,
            std::make_unique<OraclePredictor>(std::vector<int>(100, slots_per_window))));
      }
    }
    server = std::make_unique<PadServer>(config, clients, *exchange, 5);
  }

  void RunFirstEpoch() {
    for (auto& client : clients) {
      client->StartWindow(0.0, 0);
    }
    server->RunEpoch(0.0);
  }

  PadConfig config;
  std::vector<std::unique_ptr<PadClient>> clients;
  std::unique_ptr<Exchange> exchange;
  std::unique_ptr<PadServer> server;
};

PadConfig BaseConfig() {
  PadConfig config;
  config.prediction_window_s = kHour;
  config.deadline_s = 3.0 * kHour;
  config.capacity_confidence = 0.5;
  return config;
}

Campaign TargetedCampaign(int64_t id, uint32_t mask, int64_t target = 1'000'000,
                          double cpm = 2.0) {
  Campaign campaign;
  campaign.campaign_id = id;
  campaign.arrival_time = 0.0;
  campaign.bid_per_impression = cpm / 1000.0;
  campaign.target_impressions = target;
  campaign.display_deadline_s = 3.0 * kHour;
  campaign.segment_mask = mask;
  return campaign;
}

TEST(TargetingDispatchTest, ReplicasStayInsideTargetedSegments) {
  // All demand targets segment 1; segment-0 clients must receive nothing.
  Harness harness({3, 3}, 4, BaseConfig(), {TargetedCampaign(1, 0b10u)});
  harness.RunFirstEpoch();
  ASSERT_GT(harness.server->impressions_sold(), 0);
  for (size_t c = 0; c < harness.clients.size(); ++c) {
    if (harness.clients[c]->segment() == 0) {
      EXPECT_EQ(harness.clients[c]->cache_size(), 0) << "segment-0 client got a targeted ad";
    }
  }
  int64_t segment1_cached = 0;
  for (const auto& client : harness.clients) {
    if (client->segment() == 1) {
      segment1_cached += client->cache_size();
    }
  }
  EXPECT_EQ(segment1_cached, harness.server->impressions_dispatched());
}

TEST(TargetingDispatchTest, RunOfNetworkUsesAllSegments) {
  Harness harness({3, 3}, 4, BaseConfig(), {TargetedCampaign(1, kAllSegments)});
  harness.RunFirstEpoch();
  // Both segments' inventory sells (12 predicted slots per segment).
  EXPECT_EQ(harness.server->impressions_sold(), 24);
}

TEST(TargetingDispatchTest, TargetedDemandOnlyBuysItsSegmentInventory) {
  // Campaign targets segment 0; segment 1's predicted slots find no buyer.
  Harness harness({2, 2}, 5, BaseConfig(), {TargetedCampaign(1, 0b01u)});
  harness.RunFirstEpoch();
  EXPECT_EQ(harness.server->impressions_sold(), 10);  // Segment 0 only.
}

TEST(TargetingDispatchTest, DiversityCapLimitsReplicasPerClient) {
  // One campaign with a per-day cap of 1: a client may hold at most one of
  // its replicas per dispatch even when it has far more capacity.
  Campaign campaign = TargetedCampaign(1, kAllSegments);
  campaign.frequency_cap_per_day = 1;
  PadConfig config = BaseConfig();
  Harness harness({1}, 6, config, {campaign});
  harness.RunFirstEpoch();
  // Six slots predicted, but the single client may hold only one replica of
  // this campaign.
  EXPECT_EQ(harness.clients[0]->cache_size(), 1);
}

TEST(TargetingDispatchTest, UncappedCampaignFillsCapacity) {
  Harness harness({1}, 6, BaseConfig(), {TargetedCampaign(1, kAllSegments)});
  harness.RunFirstEpoch();
  EXPECT_EQ(harness.clients[0]->cache_size(), 6);
}

TEST(TargetingDispatchTest, MixedCampaignsShareClientUnderCaps) {
  Campaign capped = TargetedCampaign(1, kAllSegments, /*target=*/2, 5.0);
  capped.frequency_cap_per_day = 2;
  Campaign open_campaign = TargetedCampaign(2, kAllSegments, 1'000'000, 1.0);
  Harness harness({1}, 6, BaseConfig(), {capped, open_campaign});
  harness.RunFirstEpoch();
  // The high-bid capped campaign takes its 2 impressions (within the cap);
  // the remaining 4 slots go to campaign 2.
  EXPECT_EQ(harness.clients[0]->cache_size(), 6);
  EXPECT_EQ(harness.server->impressions_sold(), 6);
}

}  // namespace
}  // namespace pad
