// Unit tests for the ThreadPool and the parallel sweep engine.
//
// The serial-vs-parallel *equivalence* guarantee is exercised here at unit
// scale (a handful of tiny runs) and at system scale in
// tests/integration/parallel_determinism_test.cc.
#include "src/core/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/units.h"

namespace pad {
namespace {

PadConfig TinyConfig(int num_users) {
  PadConfig config = QuickConfig();
  config.population.num_users = num_users;
  config.population.horizon_s = 9.0 * kDay;
  return config;
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsAsksHardware) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    constexpr int64_t kJobs = 100;
    std::vector<std::atomic<int>> hits(kJobs);
    pool.ParallelFor(kJobs, [&](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
    for (int64_t i = 0; i < kJobs; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, MoreThreadsThanJobs) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(3, [&](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.ParallelFor(17, [&](int64_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 170);
}

TEST(ThreadPoolTest, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int64_t> completed{0};
  EXPECT_THROW(
      pool.ParallelFor(20,
                       [&](int64_t i) {
                         if (i == 7) {
                           throw std::runtime_error("job 7 failed");
                         }
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  // The batch still drains: every non-throwing job ran.
  EXPECT_EQ(completed.load(), 19);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<int64_t> order;
  pool.ParallelFor(5, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(SweepTest, ResultsComeBackInSubmissionOrder) {
  // Distinct horizons make each job's scored_days identify it.
  std::vector<PadConfig> configs;
  for (int extra_day = 0; extra_day < 4; ++extra_day) {
    PadConfig config = TinyConfig(6);
    config.population.horizon_s = (9.0 + extra_day) * kDay;
    configs.push_back(config);
  }
  const std::vector<Comparison> results = RunComparisonMany(configs, {.threads = 4});
  ASSERT_EQ(results.size(), configs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].pad.scored_days, 2.0 + static_cast<double>(i)) << "i=" << i;
  }
}

TEST(SweepTest, ParallelComparisonMatchesSerialLoop) {
  std::vector<PadConfig> configs;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    PadConfig config = TinyConfig(8);
    config.seed = seed;
    config.population.seed = seed * 101;
    configs.push_back(config);
  }

  std::vector<Comparison> serial;
  for (const PadConfig& config : configs) {
    serial.push_back(RunComparison(config));
  }
  const std::vector<Comparison> parallel = RunComparisonMany(configs, {.threads = 3});

  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(ComparisonDigest(parallel[i]), ComparisonDigest(serial[i])) << "i=" << i;
  }
}

TEST(SweepTest, SharedInputRunsMatchSerialIncludingEventLogs) {
  PadConfig base = TinyConfig(8);
  const SimInputs inputs = GenerateInputs(base);

  std::vector<PadConfig> points;
  for (double confidence : {0.2, 0.4, 0.6}) {
    PadConfig point = base;
    point.capacity_confidence = confidence;
    points.push_back(point);
  }

  std::vector<EventLog> serial_logs(points.size());
  std::vector<PadRunResult> serial;
  for (size_t i = 0; i < points.size(); ++i) {
    serial.push_back(RunPad(points[i], inputs, &serial_logs[i]));
  }

  std::vector<EventLog> parallel_logs;
  const std::vector<PadRunResult> parallel =
      RunPadMany(points, inputs, {.threads = 3}, &parallel_logs);

  ASSERT_EQ(parallel.size(), serial.size());
  ASSERT_EQ(parallel_logs.size(), serial_logs.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(MetricsDigest(parallel[i]), MetricsDigest(serial[i])) << "i=" << i;
    EXPECT_EQ(parallel_logs[i].Digest(), serial_logs[i].Digest()) << "i=" << i;
    EXPECT_EQ(parallel_logs[i].events().size(), serial_logs[i].events().size()) << "i=" << i;
  }
}

TEST(SweepTest, ReplicateWithSeedsDecorrelatesJobs) {
  const PadConfig base = TinyConfig(8);
  const std::vector<PadConfig> replicas = ReplicateWithSeeds(base, 4, 99);
  ASSERT_EQ(replicas.size(), 4u);
  for (size_t i = 0; i < replicas.size(); ++i) {
    for (size_t j = i + 1; j < replicas.size(); ++j) {
      EXPECT_NE(replicas[i].seed, replicas[j].seed);
      EXPECT_NE(replicas[i].population.seed, replicas[j].population.seed);
      EXPECT_NE(replicas[i].campaigns.seed, replicas[j].campaigns.seed);
    }
  }
  // Same base seed -> same replica seeds (the helper itself is deterministic).
  const std::vector<PadConfig> again = ReplicateWithSeeds(base, 4, 99);
  for (size_t i = 0; i < replicas.size(); ++i) {
    EXPECT_EQ(replicas[i].seed, again[i].seed);
  }
  // Different traces: the replicated runs must not be identical.
  const std::vector<Comparison> results = RunComparisonMany(replicas, {.threads = 2});
  EXPECT_NE(ComparisonDigest(results[0]), ComparisonDigest(results[1]));
}

TEST(SweepTest, DigestDistinguishesDifferentRuns) {
  PadConfig a = TinyConfig(8);
  PadConfig b = TinyConfig(8);
  b.deadline_s = 2.0 * kHour;
  const Comparison ca = RunComparison(a);
  const Comparison cb = RunComparison(b);
  EXPECT_NE(ComparisonDigest(ca), ComparisonDigest(cb));
  // Same config twice: identical digest (the run itself is deterministic).
  EXPECT_EQ(ComparisonDigest(ca), ComparisonDigest(RunComparison(a)));
}

}  // namespace
}  // namespace pad
