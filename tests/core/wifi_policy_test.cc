#include "src/core/wifi_policy.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/units.h"
#include "src/core/pad_client.h"
#include "src/core/pad_simulation.h"
#include "src/prediction/predictors.h"

namespace pad {
namespace {

TEST(WifiPolicyTest, DisabledIsNeverAvailable) {
  WifiPolicy policy;  // enabled = false.
  for (double t = 0.0; t < kDay; t += kHour) {
    EXPECT_FALSE(WifiAvailableAt(policy, 0, t));
  }
}

TEST(WifiPolicyTest, WindowWrapsMidnight) {
  WifiPolicy policy;
  policy.enabled = true;
  policy.home_start_h = 19.0;
  policy.home_end_h = 8.0;
  policy.jitter_h = 0.0;
  EXPECT_TRUE(WifiAvailableAt(policy, 0, 21.0 * kHour));   // Evening.
  EXPECT_TRUE(WifiAvailableAt(policy, 0, 2.0 * kHour));    // Past midnight.
  EXPECT_TRUE(WifiAvailableAt(policy, 0, 7.5 * kHour));    // Early morning.
  EXPECT_FALSE(WifiAvailableAt(policy, 0, 12.0 * kHour));  // Midday.
  EXPECT_FALSE(WifiAvailableAt(policy, 0, 18.5 * kHour));
}

TEST(WifiPolicyTest, NonWrappingWindow) {
  WifiPolicy policy;
  policy.enabled = true;
  policy.home_start_h = 9.0;
  policy.home_end_h = 17.0;
  policy.jitter_h = 0.0;
  EXPECT_TRUE(WifiAvailableAt(policy, 0, 12.0 * kHour));
  EXPECT_FALSE(WifiAvailableAt(policy, 0, 20.0 * kHour));
}

TEST(WifiPolicyTest, JitterVariesByClientButIsDeterministic) {
  WifiPolicy policy;
  policy.enabled = true;
  policy.jitter_h = 1.0;
  // At the nominal boundary (19:00), different users flip at different times.
  int available = 0;
  for (int client = 0; client < 200; ++client) {
    if (WifiAvailableAt(policy, client, 19.0 * kHour)) {
      ++available;
    }
    EXPECT_EQ(WifiAvailableAt(policy, client, 19.0 * kHour),
              WifiAvailableAt(policy, client, 19.0 * kHour + kDay));
  }
  EXPECT_GT(available, 40);
  EXPECT_LT(available, 160);
}

TEST(WifiPolicyTest, SpansDayBoundaryConsistently) {
  WifiPolicy policy;
  policy.enabled = true;
  policy.jitter_h = 0.0;
  // Day 5, 23:00 is inside the window just like day 0, 23:00.
  EXPECT_TRUE(WifiAvailableAt(policy, 0, 5.0 * kDay + 23.0 * kHour));
}

TEST(WifiClientTest, TransfersRouteToWifiDuringWindow) {
  PadConfig config;
  config.prediction_window_s = kHour;
  config.wifi.enabled = true;
  config.wifi.jitter_h = 0.0;
  PadClient client(0, 0, config, std::make_unique<LastValuePredictor>());

  // Midday content: cellular. Evening content: WiFi.
  client.OnContentTransfer(Transfer{.request_time = 12.0 * kHour,
                                    .bytes = 1000.0,
                                    .direction = Direction::kDownlink,
                                    .category = TrafficCategory::kAppContent});
  client.OnContentTransfer(Transfer{.request_time = 21.0 * kHour,
                                    .bytes = 1000.0,
                                    .direction = Direction::kDownlink,
                                    .category = TrafficCategory::kAppContent});
  client.FinishRadio(2.0 * kDay);
  EXPECT_EQ(client.cell_report().For(TrafficCategory::kAppContent).transfers, 1);
  EXPECT_EQ(client.wifi_report().For(TrafficCategory::kAppContent).transfers, 1);
  // Combined view sees both.
  EXPECT_EQ(client.radio_report().For(TrafficCategory::kAppContent).transfers, 2);
  // WiFi leg is far cheaper than the cellular leg.
  EXPECT_LT(client.wifi_report().total_energy_j(),
            client.cell_report().total_energy_j() / 10.0);
}

TEST(WifiEndToEndTest, OffloadCutsAbsoluteAdEnergyForBoth) {
  PadConfig config = QuickConfig();
  config.population.num_users = 60;
  const SimInputs inputs = GenerateInputs(config);

  const BaselineResult cell_baseline = RunBaseline(config, inputs);
  const PadRunResult cell_pad = RunPad(config, inputs);
  config.wifi.enabled = true;
  const BaselineResult wifi_baseline = RunBaseline(config, inputs);
  const PadRunResult wifi_pad = RunPad(config, inputs);

  EXPECT_LT(wifi_baseline.energy.AdEnergyJ(), cell_baseline.energy.AdEnergyJ());
  EXPECT_LT(wifi_pad.energy.AdEnergyJ(), cell_pad.energy.AdEnergyJ());
  // Market outcomes are radio-independent.
  EXPECT_EQ(wifi_pad.ledger.billed, cell_pad.ledger.billed);
  EXPECT_EQ(wifi_pad.service.slots, cell_pad.service.slots);
}

}  // namespace
}  // namespace pad
