#include "src/core/pad_server.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/prediction/predictors.h"

namespace pad {
namespace {

PadConfig ServerConfig() {
  PadConfig config;
  config.prediction_window_s = kHour;
  config.deadline_s = 3.0 * kHour;  // Replicas survive across epochs.
  config.capacity_confidence = 0.5;
  return config;
}

// A harness with hand-picked per-client oracle truth series.
struct ServerHarness {
  ServerHarness(std::vector<std::vector<int>> truths, PadConfig config_in,
                int64_t demand = 1'000'000)
      : config(std::move(config_in)) {
    Campaign campaign;
    campaign.campaign_id = 1;
    campaign.arrival_time = 0.0;
    campaign.bid_per_impression = 0.002;
    campaign.target_impressions = demand;
    campaign.display_deadline_s = config.deadline_s;
    exchange = std::make_unique<Exchange>(ExchangeConfig{}, std::vector<Campaign>{campaign});
    for (size_t c = 0; c < truths.size(); ++c) {
      clients.push_back(std::make_unique<PadClient>(
          static_cast<int>(c), /*segment=*/0, config,
          std::make_unique<OraclePredictor>(std::move(truths[c]))));
    }
    server = std::make_unique<PadServer>(config, clients, *exchange, 99);
  }

  static ServerHarness Uniform(int num_clients, int slots_per_window, PadConfig config,
                               int64_t demand = 1'000'000) {
    std::vector<std::vector<int>> truths(
        static_cast<size_t>(num_clients), std::vector<int>(1000, slots_per_window));
    return ServerHarness(std::move(truths), std::move(config), demand);
  }

  void StartAllWindows(double now, int window) {
    for (auto& client : clients) {
      client->StartWindow(now, window);
    }
  }

  int64_t TotalCached() const {
    int64_t total = 0;
    for (const auto& client : clients) {
      total += client->cache_size();
    }
    return total;
  }

  PadConfig config;
  std::vector<std::unique_ptr<PadClient>> clients;
  std::unique_ptr<Exchange> exchange;
  std::unique_ptr<PadServer> server;
};

TEST(PadServerTest, SellsPredictedInventory) {
  ServerHarness harness = ServerHarness::Uniform(10, 6, ServerConfig());
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  // Oracle variance is 0, so per-epoch capacity == predicted slots: all
  // 10 x 6 predicted slots sell, one replica each (probability 1 holders).
  EXPECT_EQ(harness.server->impressions_sold(), 60);
  EXPECT_EQ(harness.server->impressions_dispatched(), 60);
  EXPECT_EQ(harness.TotalCached(), 60);
}

TEST(PadServerTest, InventoryControlStopsResellingCachedSlots) {
  ServerHarness harness = ServerHarness::Uniform(10, 6, ServerConfig());
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  const int64_t after_first = harness.server->impressions_sold();
  ASSERT_EQ(after_first, 60);
  // Next epoch: no slots occurred, caches still full (3 h deadline),
  // predictions unchanged -> no sellable inventory.
  harness.StartAllWindows(kHour, 1);
  harness.server->RunEpoch(kHour);
  EXPECT_EQ(harness.server->impressions_sold(), after_first);
}

TEST(PadServerTest, WithoutInventoryControlOversells) {
  PadConfig config = ServerConfig();
  config.inventory_control = false;
  ServerHarness harness = ServerHarness::Uniform(10, 6, config);
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  harness.StartAllWindows(kHour, 1);
  harness.server->RunEpoch(kHour);
  EXPECT_EQ(harness.server->impressions_sold(), 120);
}

TEST(PadServerTest, SalesCappedByMarketDemand) {
  ServerHarness harness = ServerHarness::Uniform(10, 6, ServerConfig(), /*demand=*/25);
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  EXPECT_EQ(harness.server->impressions_sold(), 25);
}

TEST(PadServerTest, ZeroPredictionsSellNothing) {
  ServerHarness harness = ServerHarness::Uniform(10, 0, ServerConfig());
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  EXPECT_EQ(harness.server->impressions_sold(), 0);
  EXPECT_EQ(harness.TotalCached(), 0);
}

TEST(PadServerTest, DeadlineExpiryMarksViolations) {
  ServerHarness harness = ServerHarness::Uniform(5, 4, ServerConfig());
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  const int64_t sold = harness.server->impressions_sold();
  ASSERT_EQ(sold, 20);
  // No client ever displays; once the 3 h deadline passes every sale is a
  // violation.
  harness.exchange->ledger().ExpireDeadlines(4.0 * kHour);
  EXPECT_EQ(harness.exchange->ledger().totals().violated, sold);
}

TEST(PadServerTest, DisplayedImpressionsInvalidatedOnReplicaHolders) {
  PadConfig config = ServerConfig();
  config.overbooking_factor = 2.0;  // Force 2 replicas per impression.
  ServerHarness harness = ServerHarness::Uniform(4, 2, config, /*demand=*/4);
  ServiceStats stats;
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  EXPECT_EQ(harness.server->impressions_sold(), 4);
  EXPECT_EQ(harness.server->impressions_dispatched(), 8);

  // Every client downloads its bundle (content transfer flushes it), then
  // one replica holder displays everything it has.
  for (auto& client : harness.clients) {
    client->OnContentTransfer(Transfer{.request_time = 60.0,
                                       .bytes = 1000.0,
                                       .direction = Direction::kDownlink,
                                       .category = TrafficCategory::kAppContent});
  }
  for (int i = 0; i < 8; ++i) {
    harness.clients[0]->OnSlot(100.0 + i, *harness.exchange, stats);
  }
  const int64_t billed = harness.exchange->ledger().totals().billed;
  ASSERT_GT(billed, 0);

  // The next sync strips the duplicate replicas from the other holders.
  harness.StartAllWindows(kHour, 1);
  harness.server->RunEpoch(kHour);
  int64_t invalidated = 0;
  for (const auto& client : harness.clients) {
    invalidated += client->cache().invalidated_drops();
  }
  EXPECT_GT(invalidated, 0);
}

TEST(PadServerTest, RescueMovesAtRiskAdsToCapableClients) {
  // Group A predicts slots in window 0 then goes idle; group B wakes up in
  // window 1. Ads sold against group A never display; the rescue pass must
  // re-home them onto group B before the deadline.
  PadConfig config = ServerConfig();
  config.deadline_s = 2.0 * kHour;
  std::vector<std::vector<int>> truths;
  for (int c = 0; c < 3; ++c) {
    truths.push_back({4, 0, 0, 0});
  }
  for (int c = 0; c < 3; ++c) {
    truths.push_back({0, 8, 8, 8});
  }
  ServerHarness harness(std::move(truths), config, /*demand=*/12);
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  EXPECT_EQ(harness.server->impressions_sold(), 12);  // All on group A.
  EXPECT_EQ(harness.server->rescues_dispatched(), 0);

  // Window 1: group A idle (holder probability 0), impressions now within
  // one epoch of their deadline, and group B has capacity.
  harness.StartAllWindows(kHour, 1);
  harness.server->RunEpoch(kHour);
  EXPECT_GT(harness.server->rescues_dispatched(), 0);
  int64_t group_b_cached = 0;
  for (size_t c = 3; c < 6; ++c) {
    group_b_cached += harness.clients[c]->cache_size();
  }
  EXPECT_GT(group_b_cached, 0);
}

TEST(PadServerTest, RescueDisabledByConfig) {
  PadConfig config = ServerConfig();
  config.deadline_s = 2.0 * kHour;
  config.rescue_enabled = false;
  std::vector<std::vector<int>> truths;
  for (int c = 0; c < 3; ++c) {
    truths.push_back({4, 0, 0, 0});
  }
  for (int c = 0; c < 3; ++c) {
    truths.push_back({0, 8, 8, 8});
  }
  ServerHarness harness(std::move(truths), config, /*demand=*/12);
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  harness.StartAllWindows(kHour, 1);
  harness.server->RunEpoch(kHour);
  EXPECT_EQ(harness.server->rescues_dispatched(), 0);
}

TEST(PadServerTest, OverbookingFactorControlsReplication) {
  PadConfig lean = ServerConfig();
  lean.overbooking_factor = 0.5;
  PadConfig fat = ServerConfig();
  fat.overbooking_factor = 3.0;
  fat.planner.max_replicas = 8;
  ServerHarness lean_harness = ServerHarness::Uniform(10, 4, lean, /*demand=*/20);
  ServerHarness fat_harness = ServerHarness::Uniform(10, 4, fat, /*demand=*/20);
  lean_harness.StartAllWindows(0.0, 0);
  fat_harness.StartAllWindows(0.0, 0);
  lean_harness.server->RunEpoch(0.0);
  fat_harness.server->RunEpoch(0.0);
  EXPECT_EQ(lean_harness.server->impressions_dispatched(), 20);
  EXPECT_GT(fat_harness.server->impressions_dispatched(), 40);
}

TEST(PadServerTest, CarryAccumulatesFractionalPredictions) {
  // T = 2 h with D = 1 h gives hourly epochs and a per-epoch expectation of
  // 0.5 slots: the fractional remainder must carry so the client sells one
  // slot every other epoch instead of never.
  PadConfig config = ServerConfig();
  config.prediction_window_s = 2.0 * kHour;
  config.deadline_s = 2.0 * kHour;
  // A zero-variance 0.5-slot epoch forecast has zero *confident* capacity,
  // so disable the budget cap to observe the carry in isolation.
  config.inventory_control = false;
  ASSERT_DOUBLE_EQ(config.EpochS(), kHour);
  ServerHarness harness = ServerHarness::Uniform(1, 1, config);
  harness.StartAllWindows(0.0, 0);
  harness.server->RunEpoch(0.0);
  EXPECT_EQ(harness.server->impressions_sold(), 0);  // 0.5 floors to 0.
  harness.server->RunEpoch(kHour);                   // Same window, carry = 1.0.
  EXPECT_EQ(harness.server->impressions_sold(), 1);
}

}  // namespace
}  // namespace pad
