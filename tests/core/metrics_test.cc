#include "src/core/metrics.h"

#include <gtest/gtest.h>

namespace pad {
namespace {

EnergyBreakdown MakeBreakdown(double ad_fetch, double prefetch, double report, double content,
                              double local) {
  EnergyBreakdown breakdown;
  breakdown.radio.For(TrafficCategory::kAdFetch).transfer_j = ad_fetch;
  breakdown.radio.For(TrafficCategory::kAdPrefetch).transfer_j = prefetch;
  breakdown.radio.For(TrafficCategory::kSlotReport).transfer_j = report;
  breakdown.radio.For(TrafficCategory::kAppContent).transfer_j = content;
  breakdown.local_j = local;
  return breakdown;
}

TEST(EnergyBreakdownTest, AdEnergyIncludesAllAdMachinery) {
  const EnergyBreakdown breakdown = MakeBreakdown(10.0, 5.0, 1.0, 20.0, 64.0);
  EXPECT_DOUBLE_EQ(breakdown.AdEnergyJ(), 16.0);
  EXPECT_DOUBLE_EQ(breakdown.CommEnergyJ(), 36.0);
  EXPECT_DOUBLE_EQ(breakdown.TotalJ(), 100.0);
  EXPECT_DOUBLE_EQ(breakdown.AdShareOfComm(), 16.0 / 36.0);
  EXPECT_DOUBLE_EQ(breakdown.AdShareOfTotal(), 0.16);
}

TEST(EnergyBreakdownTest, EmptyBreakdownSharesAreZero) {
  const EnergyBreakdown breakdown;
  EXPECT_DOUBLE_EQ(breakdown.AdShareOfComm(), 0.0);
  EXPECT_DOUBLE_EQ(breakdown.AdShareOfTotal(), 0.0);
}

TEST(ServiceStatsTest, CacheHitRate) {
  ServiceStats stats;
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 0.0);
  stats.slots = 10;
  stats.served_from_cache = 7;
  EXPECT_DOUBLE_EQ(stats.CacheHitRate(), 0.7);
}

TEST(PadRunResultTest, MeanReplication) {
  PadRunResult result;
  EXPECT_DOUBLE_EQ(result.MeanReplication(), 0.0);
  result.impressions_sold = 100;
  result.impressions_dispatched = 130;
  EXPECT_DOUBLE_EQ(result.MeanReplication(), 1.3);
}

TEST(ComparisonTest, AdEnergySavings) {
  Comparison comparison;
  comparison.baseline.energy = MakeBreakdown(100.0, 0.0, 0.0, 50.0, 0.0);
  comparison.pad.energy = MakeBreakdown(10.0, 20.0, 5.0, 50.0, 0.0);
  // Baseline ad = 100, PAD ad = 35 -> 65% savings.
  EXPECT_DOUBLE_EQ(comparison.AdEnergySavings(), 0.65);
}

TEST(ComparisonTest, SavingsZeroWhenBaselineHasNoAdEnergy) {
  Comparison comparison;
  comparison.pad.energy = MakeBreakdown(10.0, 0.0, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(comparison.AdEnergySavings(), 0.0);
}

TEST(ComparisonTest, RevenueRatio) {
  Comparison comparison;
  comparison.baseline.ledger.billed_revenue = 200.0;
  comparison.pad.ledger.billed_revenue = 190.0;
  EXPECT_DOUBLE_EQ(comparison.RevenueRatio(), 0.95);
}

TEST(ComparisonTest, NegativeSavingsPossible) {
  Comparison comparison;
  comparison.baseline.energy = MakeBreakdown(50.0, 0.0, 0.0, 0.0, 0.0);
  comparison.pad.energy = MakeBreakdown(40.0, 30.0, 0.0, 0.0, 0.0);
  EXPECT_LT(comparison.AdEnergySavings(), 0.0);
}

}  // namespace
}  // namespace pad
