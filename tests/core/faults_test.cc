// Unit tests for the deterministic fault plan (core/faults.h).
//
// The properties asserted here are load-bearing for the rest of the suite:
// statelessness makes fault-enabled runs thread-count invariant, and the
// nesting of fault sets across rates is what gives the degradation sweep
// (integration/fault_sweep_test.cc) its monotone structure.
#include "src/core/faults.h"

#include <gtest/gtest.h>

#include <vector>

namespace pad {
namespace {

FaultConfig AllChannels(double rate) {
  FaultConfig config = FaultConfig::Uniform(rate);
  config.report_delay_rate = rate / 2.0;
  return config;
}

TEST(FaultPlanTest, DefaultConstructedPlanIsDisabledAndBenign) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  for (int client = 0; client < 4; ++client) {
    for (int64_t index = 0; index < 50; ++index) {
      EXPECT_EQ(plan.ReportFateFor(client, index), ReportFate::kDelivered);
      EXPECT_FALSE(plan.FetchFails(client, index));
      EXPECT_FALSE(plan.SyncMissed(client, index));
      EXPECT_FALSE(plan.OfflineAt(client, static_cast<double>(index) * 100.0));
    }
  }
}

TEST(FaultPlanTest, ZeroRatesDisableThePlan) {
  EXPECT_FALSE(FaultConfig{}.AnyEnabled());
  EXPECT_FALSE(FaultPlan(FaultConfig{}, 7).enabled());
  EXPECT_TRUE(FaultPlan(FaultConfig::Uniform(0.01), 7).enabled());
}

TEST(FaultPlanTest, DecisionsAreAPureFunctionOfConfigAndSeed) {
  const FaultConfig config = AllChannels(0.2);
  const FaultPlan first(config, 99);
  const FaultPlan second(config, 99);
  for (int client = 0; client < 8; ++client) {
    for (int64_t index = 0; index < 200; ++index) {
      EXPECT_EQ(first.ReportFateFor(client, index), second.ReportFateFor(client, index));
      EXPECT_EQ(first.FetchFails(client, index), second.FetchFails(client, index));
      EXPECT_EQ(first.SyncMissed(client, index), second.SyncMissed(client, index));
      const double t = static_cast<double>(index) * 1800.0;
      EXPECT_EQ(first.OfflineAt(client, t), second.OfflineAt(client, t));
    }
  }
}

TEST(FaultPlanTest, DifferentSeedsFaultDifferentEvents) {
  const FaultConfig config = FaultConfig::Uniform(0.2);
  const FaultPlan a(config, 1);
  const FaultPlan b(config, 2);
  int differing = 0;
  for (int client = 0; client < 8; ++client) {
    for (int64_t index = 0; index < 200; ++index) {
      differing += a.FetchFails(client, index) != b.FetchFails(client, index);
    }
  }
  EXPECT_GT(differing, 0);
}

// The monotonicity keystone: because every channel compares one fixed draw
// against its rate, the set of faulted events at a lower rate is a subset of
// the set at any higher rate (common-random-number coupling).
TEST(FaultPlanTest, FaultSetsNestAcrossRates) {
  const std::vector<double> rates = {0.01, 0.05, 0.1, 0.2, 0.5};
  for (size_t lo = 0; lo + 1 < rates.size(); ++lo) {
    const FaultPlan sparse(FaultConfig::Uniform(rates[lo]), 1234);
    const FaultPlan dense(FaultConfig::Uniform(rates[lo + 1]), 1234);
    for (int client = 0; client < 8; ++client) {
      for (int64_t index = 0; index < 400; ++index) {
        if (sparse.FetchFails(client, index)) {
          EXPECT_TRUE(dense.FetchFails(client, index));
        }
        if (sparse.SyncMissed(client, index)) {
          EXPECT_TRUE(dense.SyncMissed(client, index));
        }
        if (sparse.ReportFateFor(client, index) == ReportFate::kDropped) {
          EXPECT_EQ(dense.ReportFateFor(client, index), ReportFate::kDropped);
        }
        const double t = static_cast<double>(index) * 3600.0;
        if (sparse.OfflineAt(client, t)) {
          EXPECT_TRUE(dense.OfflineAt(client, t));
        }
      }
    }
  }
}

TEST(FaultPlanTest, RateOneFaultsEverything) {
  FaultConfig config = FaultConfig::Uniform(1.0);
  const FaultPlan plan(config, 5);
  for (int client = 0; client < 4; ++client) {
    for (int64_t index = 0; index < 100; ++index) {
      EXPECT_EQ(plan.ReportFateFor(client, index), ReportFate::kDropped);
      EXPECT_TRUE(plan.FetchFails(client, index));
      EXPECT_TRUE(plan.SyncMissed(client, index));
      EXPECT_TRUE(plan.OfflineAt(client, static_cast<double>(index)));
    }
  }
}

TEST(FaultPlanTest, ReportDelayOccupiesItsOwnBandAboveDrop) {
  FaultConfig config;
  config.report_drop_rate = 0.1;
  config.report_delay_rate = 0.9;  // Everything not dropped is delayed.
  const FaultPlan plan(config, 21);
  int dropped = 0;
  int delayed = 0;
  constexpr int kTrials = 2000;
  for (int64_t index = 0; index < kTrials; ++index) {
    switch (plan.ReportFateFor(0, index)) {
      case ReportFate::kDropped:
        ++dropped;
        break;
      case ReportFate::kDelayed:
        ++delayed;
        break;
      case ReportFate::kDelivered:
        ADD_FAILURE() << "drop + delay = 1: no report may be delivered";
        break;
    }
  }
  EXPECT_EQ(dropped + delayed, kTrials);
  // The drop band is u < 0.1; allow generous sampling slack around 10%.
  EXPECT_GT(dropped, kTrials / 20);
  EXPECT_LT(dropped, kTrials / 5);
}

TEST(FaultPlanTest, OfflineIsConstantWithinAWindow) {
  FaultConfig config;
  config.offline_rate = 0.3;
  config.offline_window_s = 3600.0;
  const FaultPlan plan(config, 77);
  for (int client = 0; client < 4; ++client) {
    for (int window = 0; window < 100; ++window) {
      const double base = static_cast<double>(window) * 3600.0;
      const bool at_start = plan.OfflineAt(client, base);
      EXPECT_EQ(plan.OfflineAt(client, base + 1.0), at_start);
      EXPECT_EQ(plan.OfflineAt(client, base + 1800.0), at_start);
      EXPECT_EQ(plan.OfflineAt(client, base + 3599.0), at_start);
    }
  }
}

TEST(FaultPlanTest, EmpiricalRateTracksConfiguredRate) {
  const double rate = 0.2;
  const FaultPlan plan(FaultConfig::Uniform(rate), 31337);
  int failures = 0;
  constexpr int kTrials = 20000;
  for (int client = 0; client < 20; ++client) {
    for (int64_t index = 0; index < kTrials / 20; ++index) {
      failures += plan.FetchFails(client, index);
    }
  }
  const double empirical = static_cast<double>(failures) / kTrials;
  EXPECT_NEAR(empirical, rate, 0.02);
}

TEST(FaultPlanTest, ChannelsDrawIndependently) {
  // A fetch failure at (client, index) must not force a sync miss at the
  // same coordinates: each channel has its own draw stream.
  const FaultPlan plan(FaultConfig::Uniform(0.5), 11);
  int agree = 0;
  constexpr int kTrials = 1000;
  for (int64_t index = 0; index < kTrials; ++index) {
    agree += plan.FetchFails(3, index) == plan.SyncMissed(3, index);
  }
  EXPECT_GT(agree, kTrials / 4);
  EXPECT_LT(agree, 3 * kTrials / 4);
}

}  // namespace
}  // namespace pad
