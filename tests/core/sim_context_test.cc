// SimContext: configuration is validated exactly once, at MakeSimContext,
// and the derived constants the hot loops used to recompute are hoisted
// there. These tests pin the derived values and the failure behavior:
// invalid configs must still be rejected loudly, with the same message a
// scattered per-entry-point ValidateConfig produced, and the shard engine's
// Status-returning surface must keep reporting them as kInvalidArgument.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/core/pad_simulation.h"
#include "src/core/shard_engine.h"

namespace pad {
namespace {

TEST(SimContextTest, DerivedConstantsMatchConfigAccessors) {
  PadConfig config = QuickConfig();
  config.warmup_days = 7;
  const SimContext context = MakeSimContext(config);
  EXPECT_DOUBLE_EQ(context.t0, config.WarmupS());
  EXPECT_DOUBLE_EQ(context.window_s, config.prediction_window_s);
  EXPECT_DOUBLE_EQ(context.epoch_s, config.EpochS());
  EXPECT_EQ(context.warmup_windows,
            static_cast<int>(std::lround(config.WarmupS() / config.prediction_window_s)));
  EXPECT_EQ(context.epochs_per_window,
            static_cast<int>(std::lround(config.prediction_window_s / config.EpochS())));
  // The window/epoch grid is exact: both ratios are integers by validation.
  EXPECT_DOUBLE_EQ(context.epoch_s * context.epochs_per_window, context.window_s);
}

TEST(SimContextTest, InvalidConfigDiesWithValidationMessage) {
  PadConfig config = QuickConfig();
  config.prediction_window_s = 0.0;
  EXPECT_DEATH(MakeSimContext(config), "prediction_window_s");
}

TEST(SimContextTest, InvalidConfigDiesOnceForEveryEntryPoint) {
  // The legacy PadConfig overloads route through MakeSimContext, so a bad
  // config cannot slip past any entry point.
  PadConfig config = QuickConfig();
  config.ad_bytes = -1.0;
  EXPECT_DEATH(GenerateInputs(config), "ad_bytes");
  EXPECT_DEATH(RunComparison(config), "ad_bytes");
}

TEST(SimContextTest, ShardEngineStillReportsInvalidArgumentStatus) {
  PadConfig config = QuickConfig();
  config.prediction_window_s = -5.0;
  ShardEngineOptions options;
  const StatusOr<ShardedComparison> result = RunShardedResumable(config, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("prediction_window_s"), std::string::npos);
}

TEST(SimContextTest, ShardEngineStillReportsInvalidOptionsStatus) {
  const PadConfig config = QuickConfig();
  ShardEngineOptions options;
  options.max_resident_users = -1;
  const StatusOr<ShardedComparison> result = RunShardedResumable(config, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("max_resident_users"), std::string::npos);
}

}  // namespace
}  // namespace pad
