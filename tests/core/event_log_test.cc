#include "src/core/event_log.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/csv.h"
#include "src/common/units.h"
#include "src/core/pad_simulation.h"

namespace pad {
namespace {

TEST(EventLogTest, RecordsAndCounts) {
  EventLog log;
  log.OnSale(10.0, 1, 100, 0.002);
  log.OnDispatch(10.0, 1, 100, 7, /*rescue=*/false);
  log.OnDispatch(11.0, 1, 100, 8, /*rescue=*/true);
  log.OnBilledDisplay(20.0, 1, 100, 0.002);
  log.OnExcessDisplay(25.0, 1);
  log.OnViolation(30.0, 2, 100, 0.001);

  EXPECT_EQ(log.events().size(), 6u);
  EXPECT_EQ(log.CountOf(SimEventType::kSale), 1);
  EXPECT_EQ(log.CountOf(SimEventType::kDispatch), 1);
  EXPECT_EQ(log.CountOf(SimEventType::kRescue), 1);
  EXPECT_EQ(log.CountOf(SimEventType::kBilledDisplay), 1);
  EXPECT_EQ(log.CountOf(SimEventType::kExcessDisplay), 1);
  EXPECT_EQ(log.CountOf(SimEventType::kViolation), 1);
}

TEST(EventLogTest, CsvExportRoundTrips) {
  EventLog log;
  log.OnSale(10.5, 1, 100, 0.002);
  log.OnBilledDisplay(20.0, 1, 100, 0.002);
  std::ostringstream out;
  log.WriteCsv(out);
  const CsvTable table = ParseCsv(out.str());
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0][table.ColumnIndex("type")], "sale");
  EXPECT_DOUBLE_EQ(std::stod(table.rows[0][table.ColumnIndex("time")]), 10.5);
  EXPECT_EQ(table.rows[1][table.ColumnIndex("type")], "billed_display");
}

TEST(EventLogTest, ByHourOfDayBuckets) {
  EventLog log;
  log.OnViolation(2.5 * kHour, 1, 100, 0.0);
  log.OnViolation(kDay + 2.9 * kHour, 2, 100, 0.0);
  log.OnViolation(15.0 * kHour, 3, 100, 0.0);
  const auto histogram = log.ByHourOfDay(SimEventType::kViolation);
  EXPECT_EQ(histogram[2], 2);
  EXPECT_EQ(histogram[15], 1);
  EXPECT_EQ(histogram[0], 0);
}

TEST(EventLogTest, PerCampaignOutcomes) {
  EventLog log;
  log.OnSale(1.0, 1, 100, 0.002);
  log.OnSale(2.0, 2, 100, 0.002);
  log.OnSale(3.0, 3, 200, 0.001);
  log.OnBilledDisplay(5.0, 1, 100, 0.002);
  log.OnViolation(10.0, 2, 100, 0.002);
  const auto outcomes = log.PerCampaign();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes.at(100).sold, 2);
  EXPECT_EQ(outcomes.at(100).billed, 1);
  EXPECT_EQ(outcomes.at(100).violated, 1);
  EXPECT_DOUBLE_EQ(outcomes.at(100).FillRate(), 0.5);
  EXPECT_DOUBLE_EQ(outcomes.at(100).revenue, 0.002);
  EXPECT_EQ(outcomes.at(200).sold, 1);
  EXPECT_DOUBLE_EQ(outcomes.at(200).FillRate(), 0.0);
}

TEST(EventLogIntegrationTest, LogAgreesWithLedgerTotals) {
  PadConfig config = QuickConfig();
  config.population.num_users = 40;
  const SimInputs inputs = GenerateInputs(config);
  EventLog log;
  const PadRunResult pad = RunPad(config, inputs, &log);

  EXPECT_EQ(log.CountOf(SimEventType::kSale), pad.ledger.sold);
  EXPECT_EQ(log.CountOf(SimEventType::kBilledDisplay), pad.ledger.billed);
  EXPECT_EQ(log.CountOf(SimEventType::kExcessDisplay), pad.ledger.excess_displays);
  EXPECT_EQ(log.CountOf(SimEventType::kViolation), pad.ledger.violated);
  EXPECT_EQ(log.CountOf(SimEventType::kDispatch) + log.CountOf(SimEventType::kRescue),
            pad.impressions_dispatched);

  // Revenue reconstructed from billed events matches the ledger.
  double revenue = 0.0;
  for (const SimEvent& event : log.events()) {
    if (event.type == SimEventType::kBilledDisplay) {
      revenue += event.value;
    }
  }
  EXPECT_NEAR(revenue, pad.ledger.billed_revenue, 1e-9);
}

TEST(EventLogIntegrationTest, RescueEventsMatchServerCounter) {
  PadConfig config = QuickConfig();
  config.population.num_users = 40;
  config.rescue_threshold = 1.0 - 1e-12;  // Rescue aggressively.
  const SimInputs inputs = GenerateInputs(config);
  EventLog log;
  (void)RunPad(config, inputs, &log);
  EXPECT_GT(log.CountOf(SimEventType::kRescue), 0);
}

}  // namespace
}  // namespace pad
