#include "src/core/pad_simulation.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace pad {
namespace {

// One shared small run for the invariant checks (generation + both runners
// are deterministic, so computing it once keeps the suite fast).
const Comparison& SmallComparison() {
  static const Comparison comparison = [] {
    PadConfig config = QuickConfig();
    config.population.num_users = 60;
    return RunComparison(config);
  }();
  return comparison;
}

TEST(FilterPopulationTest, DropsEarlySessions) {
  Population population;
  population.horizon_s = 2.0 * kDay;
  UserTrace user;
  user.user_id = 0;
  user.sessions.push_back(Session{0, 0, 100.0, 10.0});
  user.sessions.push_back(Session{0, 0, kDay + 100.0, 10.0});
  population.users.push_back(user);
  const Population filtered = FilterPopulation(population, kDay);
  ASSERT_EQ(filtered.users.size(), 1u);
  ASSERT_EQ(filtered.users[0].sessions.size(), 1u);
  EXPECT_DOUBLE_EQ(filtered.users[0].sessions[0].start_time, kDay + 100.0);
  EXPECT_DOUBLE_EQ(filtered.horizon_s, population.horizon_s);
}

TEST(FilterPopulationTest, KeepsEmptyUsersPositionally) {
  Population population;
  population.horizon_s = kDay;
  population.users.push_back(UserTrace{.user_id = 5, .sessions = {}});
  const Population filtered = FilterPopulation(population, 0.0);
  ASSERT_EQ(filtered.users.size(), 1u);
  EXPECT_EQ(filtered.users[0].user_id, 5);
}

TEST(GenerateInputsTest, AlignsCatalogAndCampaigns) {
  PadConfig config = QuickConfig();
  config.deadline_s = 2.0 * kHour;
  const SimInputs inputs = GenerateInputs(config);
  EXPECT_EQ(inputs.catalog.size(), 15);
  EXPECT_EQ(static_cast<int>(inputs.population.users.size()), config.population.num_users);
  ASSERT_FALSE(inputs.campaigns.empty());
  for (const Campaign& campaign : inputs.campaigns) {
    EXPECT_DOUBLE_EQ(campaign.display_deadline_s, 2.0 * kHour);
    EXPECT_LT(campaign.arrival_time, config.population.horizon_s);
  }
  // Sessions reference only catalog apps.
  for (const UserTrace& user : inputs.population.users) {
    for (const Session& session : user.sessions) {
      EXPECT_GE(session.app_id, 0);
      EXPECT_LT(session.app_id, 15);
    }
  }
}

TEST(BaselineTest, EveryDisplayedSlotBillsImmediately) {
  const BaselineResult& baseline = SmallComparison().baseline;
  EXPECT_GT(baseline.service.slots, 0);
  EXPECT_EQ(baseline.service.served_from_cache, 0);
  EXPECT_EQ(baseline.service.fallback_fetches + baseline.service.unfilled,
            baseline.service.slots);
  // Real-time sales display instantly: no violations, no excess.
  EXPECT_EQ(baseline.ledger.violated, 0);
  EXPECT_EQ(baseline.ledger.excess_displays, 0);
  EXPECT_EQ(baseline.ledger.billed, baseline.ledger.sold);
  EXPECT_GT(baseline.ledger.billed_revenue, 0.0);
}

TEST(BaselineTest, EnergyBreakdownMatchesMeasurementStudyShape) {
  const BaselineResult& baseline = SmallComparison().baseline;
  // The paper's measurement study: ads ~65% of communication energy, ~23%
  // of total app energy. Wide tolerances: this is a small population.
  EXPECT_NEAR(baseline.energy.AdShareOfComm(), 0.65, 0.10);
  EXPECT_NEAR(baseline.energy.AdShareOfTotal(), 0.23, 0.06);
}

TEST(PadRunTest, ServiceAccountingBalances) {
  const PadRunResult& pad = SmallComparison().pad;
  EXPECT_EQ(pad.service.served_from_cache + pad.service.fallback_fetches +
                pad.service.unfilled,
            pad.service.slots);
  EXPECT_GT(pad.service.served_from_cache, 0);
}

TEST(PadRunTest, LedgerAccountingBalances) {
  const PadRunResult& pad = SmallComparison().pad;
  const LedgerTotals& ledger = pad.ledger;
  // Every sale ends billed or violated once the final expiry sweep ran.
  EXPECT_EQ(ledger.billed + ledger.violated, ledger.sold);
  EXPECT_EQ(ledger.displays, ledger.billed + ledger.excess_displays);
  EXPECT_GE(ledger.sold, pad.impressions_sold);  // Fallback sales add more.
}

TEST(PadRunTest, SlotsMatchBaselineSlots) {
  // Both runners consume the same trace, so the slot count is identical.
  EXPECT_EQ(SmallComparison().pad.service.slots, SmallComparison().baseline.service.slots);
}

TEST(PadRunTest, HeadlineMetricsInPlausibleRange) {
  const Comparison& comparison = SmallComparison();
  EXPECT_GT(comparison.AdEnergySavings(), 0.30);
  EXPECT_LT(comparison.AdEnergySavings(), 0.95);
  EXPECT_LT(comparison.pad.ledger.SlaViolationRate(), 0.12);
  EXPECT_LT(comparison.pad.ledger.RevenueLossRate(), 0.12);
  EXPECT_GT(comparison.RevenueRatio(), 0.85);
  EXPECT_GE(comparison.pad.MeanReplication(), 1.0);
  EXPECT_LT(comparison.pad.MeanReplication(), 3.0);
}

TEST(PadRunTest, PrefetchTrafficReplacesMostAdFetches) {
  const Comparison& comparison = SmallComparison();
  const EnergyReport& pad_radio = comparison.pad.energy.radio;
  const EnergyReport& baseline_radio = comparison.baseline.energy.radio;
  EXPECT_LT(pad_radio.For(TrafficCategory::kAdFetch).transfers,
            baseline_radio.For(TrafficCategory::kAdFetch).transfers / 2);
  EXPECT_GT(pad_radio.For(TrafficCategory::kAdPrefetch).transfers, 0);
  EXPECT_EQ(baseline_radio.For(TrafficCategory::kAdPrefetch).transfers, 0);
}

TEST(PadRunTest, AppContentTrafficIdenticalButPaysOwnPromotions) {
  // PAD does not change the app's own traffic (same bytes, same transfer
  // count), but once ads stop keeping the radio hot, content transfers pay
  // promotions the baseline's ad chatter used to absorb — so content energy
  // goes UP even as ad energy collapses. The local (CPU/display) energy is
  // untouched.
  const Comparison& comparison = SmallComparison();
  const CategoryEnergy& baseline_content =
      comparison.baseline.energy.radio.For(TrafficCategory::kAppContent);
  const CategoryEnergy& pad_content =
      comparison.pad.energy.radio.For(TrafficCategory::kAppContent);
  EXPECT_DOUBLE_EQ(pad_content.bytes, baseline_content.bytes);
  EXPECT_EQ(pad_content.transfers, baseline_content.transfers);
  EXPECT_GE(pad_content.transfer_j, baseline_content.transfer_j);
  EXPECT_LT(pad_content.transfer_j, 2.0 * baseline_content.transfer_j);
  EXPECT_DOUBLE_EQ(comparison.pad.energy.local_j, comparison.baseline.energy.local_j);
}

TEST(PadRunTest, DeterministicAcrossRuns) {
  PadConfig config = QuickConfig();
  config.population.num_users = 25;
  const Comparison a = RunComparison(config);
  const Comparison b = RunComparison(config);
  EXPECT_DOUBLE_EQ(a.pad.energy.radio.total_energy_j(), b.pad.energy.radio.total_energy_j());
  EXPECT_EQ(a.pad.ledger.billed, b.pad.ledger.billed);
  EXPECT_EQ(a.pad.impressions_dispatched, b.pad.impressions_dispatched);
  EXPECT_DOUBLE_EQ(a.baseline.ledger.billed_revenue, b.baseline.ledger.billed_revenue);
}

TEST(PadRunTest, SeedChangesRun) {
  PadConfig config = QuickConfig();
  config.population.num_users = 25;
  const Comparison a = RunComparison(config);
  config.population.seed = 777;
  const Comparison b = RunComparison(config);
  EXPECT_NE(a.pad.service.slots, b.pad.service.slots);
}

TEST(QuickConfigTest, RunsFastAndNonTrivially) {
  const PadConfig config = QuickConfig();
  EXPECT_GT(config.population.num_users, 0);
  EXPECT_GT(config.population.horizon_s, config.WarmupS());
  const Comparison comparison = RunComparison(config);
  EXPECT_GT(comparison.pad.service.slots, 1000);
  EXPECT_GT(comparison.pad.scored_days, 0.0);
}

}  // namespace
}  // namespace pad
