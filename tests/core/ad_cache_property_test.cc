// Randomized property test for AdCache against a trivially-correct reference
// model (a plain vector kept in FIFO order).
//
// 50 seeds, each driving a few hundred interleaved operations (push, clock
// advance, pop-for-display, bulk expiry, invalidation). After every step the
// cache must agree with the model on size and pop order, never serve an ad
// whose deadline has passed, and invalidation must be idempotent.
#include "src/core/ad_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "src/common/rng.h"

namespace pad {
namespace {

// The reference semantics, written the obvious way.
class ModelCache {
 public:
  void Push(const CachedAd& ad) { ads_.push_back(ad); }

  std::optional<CachedAd> PopForDisplay(double now) {
    while (!ads_.empty()) {
      const CachedAd front = ads_.front();
      ads_.erase(ads_.begin());
      if (front.deadline > now) {
        return front;
      }
    }
    return std::nullopt;
  }

  int64_t DropExpired(double now) {
    const size_t before = ads_.size();
    std::erase_if(ads_, [now](const CachedAd& ad) { return ad.deadline <= now; });
    return static_cast<int64_t>(before - ads_.size());
  }

  int64_t Invalidate(const std::vector<int64_t>& ids) {
    const size_t before = ads_.size();
    std::erase_if(ads_, [&ids](const CachedAd& ad) {
      return std::find(ids.begin(), ids.end(), ad.impression_id) != ids.end();
    });
    return static_cast<int64_t>(before - ads_.size());
  }

  int64_t size() const { return static_cast<int64_t>(ads_.size()); }
  const std::vector<CachedAd>& ads() const { return ads_; }

 private:
  std::vector<CachedAd> ads_;
};

TEST(AdCachePropertyTest, MatchesReferenceModelUnderRandomOperations) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    AdCache cache;
    ModelCache model;
    double now = 0.0;
    int64_t next_id = 1;

    for (int step = 0; step < 300; ++step) {
      switch (rng.UniformInt(0, 4)) {
        case 0: {  // Push a fresh ad; deadlines may be near, far, or already past.
          const CachedAd ad{next_id++, rng.UniformInt(1, 5),
                            std::max(0.0, now + rng.Uniform(-10.0, 200.0)), 3072.0};
          cache.Push(ad);
          model.Push(ad);
          break;
        }
        case 1: {  // Advance the clock.
          now += rng.Uniform(0.0, 50.0);
          break;
        }
        case 2: {  // Serve a slot.
          const std::optional<CachedAd> got = cache.PopForDisplay(now);
          const std::optional<CachedAd> want = model.PopForDisplay(now);
          ASSERT_EQ(got.has_value(), want.has_value()) << "seed=" << seed << " step=" << step;
          if (got.has_value()) {
            EXPECT_EQ(got->impression_id, want->impression_id)
                << "seed=" << seed << " step=" << step;
            // The headline safety property: a served ad is never expired.
            EXPECT_GT(got->deadline, now) << "seed=" << seed << " step=" << step;
          }
          break;
        }
        case 3: {  // Bulk expiry.
          EXPECT_EQ(cache.DropExpired(now), model.DropExpired(now))
              << "seed=" << seed << " step=" << step;
          break;
        }
        case 4: {  // Invalidate a random batch of ids seen so far. Duplicates
                   // are allowed: membership semantics make them harmless.
          std::vector<int64_t> ids;
          const int count = static_cast<int>(rng.UniformInt(0, 5));
          for (int k = 0; k < count; ++k) {
            ids.push_back(rng.UniformInt(1, std::max<int64_t>(1, next_id)));
          }
          EXPECT_EQ(cache.Invalidate(ids), model.Invalidate(ids))
              << "seed=" << seed << " step=" << step;
          // Idempotence: the same invalidation again removes nothing.
          EXPECT_EQ(cache.Invalidate(ids), 0) << "seed=" << seed << " step=" << step;
          break;
        }
      }
      ASSERT_EQ(cache.size(), model.size()) << "seed=" << seed << " step=" << step;
    }

    // Drain both; remaining order must agree entry by entry.
    while (true) {
      const std::optional<CachedAd> got = cache.PopForDisplay(now);
      const std::optional<CachedAd> want = model.PopForDisplay(now);
      ASSERT_EQ(got.has_value(), want.has_value()) << "seed=" << seed;
      if (!got.has_value()) {
        break;
      }
      EXPECT_EQ(got->impression_id, want->impression_id) << "seed=" << seed;
    }
  }
}

TEST(AdCachePropertyTest, CountersAreConsistentWithOperations) {
  // total_pushed == size + popped + expired_drops + invalidated_drops at all
  // times: every pushed ad is accounted for exactly once.
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    AdCache cache;
    double now = 0.0;
    int64_t popped = 0;
    for (int step = 0; step < 400; ++step) {
      const int op = static_cast<int>(rng.UniformInt(0, 3));
      if (op == 0) {
        cache.Push(
            CachedAd{rng.UniformInt(1, 60), 1, std::max(0.0, now + rng.Uniform(-5.0, 80.0)), 1.0});
      } else if (op == 1) {
        now += rng.Uniform(0.0, 30.0);
        cache.DropExpired(now);
      } else if (op == 2) {
        popped += cache.PopForDisplay(now).has_value() ? 1 : 0;
      } else {
        cache.Invalidate({rng.UniformInt(1, 60)});
      }
      EXPECT_EQ(cache.total_pushed(),
                cache.size() + popped + cache.expired_drops() + cache.invalidated_drops())
          << "seed=" << seed << " step=" << step;
    }
  }
}

}  // namespace
}  // namespace pad
