// Property test: the batched RRC fold (SubmitAll) is byte-identical to
// folding the same transfer sequence one Submit at a time.
//
// SubmitAll keeps the machine state in locals and inlines the tail walk, but
// it promises the *same floating-point operations in the same order* as the
// per-event path. Equality below is exact (==, not NEAR): any reassociation,
// fused update, or skipped edge case shows up as a bit difference in some
// generated sequence.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/radio/machine.h"
#include "src/radio/profile.h"

namespace pad {
namespace {

// Exact comparison, field by field, so a failure names the leaking field.
void ExpectReportsBitIdentical(const EnergyReport& a, const EnergyReport& b) {
  for (int c = 0; c < kNumTrafficCategories; ++c) {
    const CategoryEnergy& ca = a.by_category[static_cast<size_t>(c)];
    const CategoryEnergy& cb = b.by_category[static_cast<size_t>(c)];
    EXPECT_EQ(ca.transfer_j, cb.transfer_j) << "category " << c;
    EXPECT_EQ(ca.tail_j, cb.tail_j) << "category " << c;
    EXPECT_EQ(ca.bytes, cb.bytes) << "category " << c;
    EXPECT_EQ(ca.transfers, cb.transfers) << "category " << c;
  }
  EXPECT_EQ(a.promo_time_s, b.promo_time_s);
  EXPECT_EQ(a.active_time_s, b.active_time_s);
  EXPECT_EQ(a.tail_time_s, b.tail_time_s);
}

// Runs `transfers` through both fold paths on `profile` and requires
// bit-identical reports and busy_until.
void ExpectFoldsAgree(const RadioProfile& profile, const std::vector<Transfer>& transfers,
                      double end_time) {
  RadioMachine one_by_one(profile);
  for (const Transfer& transfer : transfers) {
    one_by_one.Submit(transfer);
  }
  const double horizon = std::max(end_time, one_by_one.busy_until());
  one_by_one.Finalize(horizon);

  RadioMachine batched(profile);
  batched.SubmitAll(std::span<const Transfer>(transfers));
  EXPECT_EQ(batched.busy_until(), one_by_one.busy_until());
  batched.Finalize(horizon);

  ExpectReportsBitIdentical(batched.report(), one_by_one.report());
}

TEST(FoldEquivalenceTest, EmptySequence) {
  for (const RadioProfile& profile : {ThreeGProfile(), LteProfile(), WifiProfile()}) {
    ExpectFoldsAgree(profile, {}, 1000.0);
  }
}

TEST(FoldEquivalenceTest, SingleTransfer) {
  ExpectFoldsAgree(ThreeGProfile(),
                   {Transfer{10.0, 3.0 * kKiB, Direction::kDownlink, TrafficCategory::kAdFetch}},
                   1000.0);
}

TEST(FoldEquivalenceTest, OverlappingTailSequences) {
  const RadioProfile profile = ThreeGProfile();
  // Gaps chosen to land in every regime: back-to-back (radio still active),
  // inside the first tail phase, at a phase boundary, inside a later phase,
  // and past the whole tail (idle, full promotion).
  std::vector<double> gaps = {0.0, 0.5};
  double total_tail = 0.0;
  for (const TailPhase& phase : profile.tail) {
    gaps.push_back(total_tail + phase.duration_s * 0.5);
    total_tail += phase.duration_s;
    gaps.push_back(total_tail);  // Exactly at the boundary.
  }
  gaps.push_back(total_tail + 10.0);

  for (double gap : gaps) {
    SCOPED_TRACE(testing::Message() << "gap=" << gap);
    std::vector<Transfer> transfers;
    double t = 5.0;
    for (int i = 0; i < 6; ++i) {
      transfers.push_back(Transfer{t, (i + 1) * 2.0 * kKiB, Direction::kDownlink,
                                   i % 2 == 0 ? TrafficCategory::kAdFetch
                                              : TrafficCategory::kAppContent});
      // Next request lands `gap` seconds after this one *completes*; compute
      // the completion on a scratch machine so the schedule is well-defined.
      RadioMachine probe(profile);
      probe.SubmitAll(std::span<const Transfer>(transfers));
      t = probe.busy_until() + gap;
    }
    ExpectFoldsAgree(profile, transfers, t + 100.0);
  }
}

TEST(FoldEquivalenceTest, OfflineFaultGapSequences) {
  // The shape fault injection produces: bursts of traffic separated by long
  // offline gaps (radio fully idle, tails fully paid), including a transfer
  // requested exactly at the previous busy_until.
  const RadioProfile profile = LteProfile();
  std::vector<Transfer> transfers;
  double t = 0.0;
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 3; ++i) {
      transfers.push_back(
          Transfer{t, 8.0 * kKiB, Direction::kDownlink, TrafficCategory::kAdFetch});
      t += 0.25;  // Overlapping requests: queueing on the data plane.
    }
    t += 3600.0;  // Offline gap.
  }
  ExpectFoldsAgree(profile, transfers, t);
}

TEST(FoldEquivalenceTest, RandomizedSequencesAcrossProfiles) {
  Rng rng(20260809);
  const RadioProfile profiles[] = {ThreeGProfile(), LteProfile(), WifiProfile()};
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE(testing::Message() << "trial " << trial);
    const RadioProfile& profile = profiles[trial % 3];
    const int n = static_cast<int>(rng.UniformInt(0, 40));
    std::vector<Transfer> transfers;
    double t = 0.0;
    for (int i = 0; i < n; ++i) {
      // Mix of sub-second, tail-scale, and idle-scale gaps.
      const double magnitude[] = {0.1, 1.0, 10.0, 300.0};
      t += rng.Uniform(0.0, magnitude[rng.UniformInt(0, 3)]);
      transfers.push_back(Transfer{
          t, rng.Uniform(1.0, 64.0) * kKiB,
          rng.UniformInt(0, 1) == 0 ? Direction::kDownlink : Direction::kUplink,
          static_cast<TrafficCategory>(rng.UniformInt(0, kNumTrafficCategories - 1))});
    }
    ExpectFoldsAgree(profile, transfers, t + rng.Uniform(0.0, 100.0));
  }
}

TEST(FoldEquivalenceTest, ResetReproducesFreshMachine) {
  const RadioProfile profile = ThreeGProfile();
  const std::vector<Transfer> transfers = {
      Transfer{1.0, 4.0 * kKiB, Direction::kDownlink, TrafficCategory::kAdFetch},
      Transfer{9.0, 2.0 * kKiB, Direction::kUplink, TrafficCategory::kSlotReport},
  };
  RadioMachine fresh(profile);
  fresh.SubmitAll(std::span<const Transfer>(transfers));
  fresh.Finalize(1000.0);

  RadioMachine reused(profile);
  // Dirty the machine thoroughly, then Reset.
  reused.SubmitAll(std::span<const Transfer>(transfers));
  reused.Finalize(500.0);
  reused.Reset();
  reused.SubmitAll(std::span<const Transfer>(transfers));
  reused.Finalize(1000.0);

  ExpectReportsBitIdentical(reused.report(), fresh.report());
  EXPECT_EQ(reused.busy_until(), fresh.busy_until());
}

}  // namespace
}  // namespace pad
