#include "src/radio/machine.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/units.h"

namespace pad {
namespace {

Transfer AdFetch(double t, double bytes = 3.0 * kKiB) {
  return Transfer{t, bytes, Direction::kDownlink, TrafficCategory::kAdFetch};
}

Transfer Content(double t, double bytes = 20.0 * kKiB) {
  return Transfer{t, bytes, Direction::kDownlink, TrafficCategory::kAppContent};
}

TEST(RadioMachineTest, SingleTransferMatchesClosedForm) {
  const RadioProfile profile = ThreeGProfile();
  RadioMachine machine(profile);
  machine.Submit(AdFetch(100.0));
  machine.Finalize(1000.0);
  EXPECT_NEAR(machine.report().total_energy_j(),
              profile.IsolatedTransferEnergy(3.0 * kKiB, false), 1e-9);
}

TEST(RadioMachineTest, TimingFromIdle) {
  const RadioProfile profile = ThreeGProfile();
  RadioMachine machine(profile);
  const auto result = machine.Submit(AdFetch(100.0));
  EXPECT_DOUBLE_EQ(result.start_time, 100.0 + profile.promo_latency_s);
  EXPECT_NEAR(result.completion_time,
              result.start_time + profile.TransferDuration(3.0 * kKiB, false), 1e-12);
}

TEST(RadioMachineTest, TruncatedTailWhenTransfersClose) {
  const RadioProfile profile = ThreeGProfile();
  // Two transfers 2 s apart: only 2 s of DCH tail paid between them, and the
  // second transfer resumes without promotion (still in DCH).
  RadioMachine machine(profile);
  machine.Submit(AdFetch(0.0));
  const double first_completion = machine.busy_until();
  const auto second = machine.Submit(AdFetch(first_completion + 2.0));
  EXPECT_DOUBLE_EQ(second.start_time, first_completion + 2.0);  // No promotion.
  machine.Finalize(1e6);

  const double expected = profile.promo_power_w * profile.promo_latency_s +
                          2.0 * profile.active_power_w * profile.TransferDuration(3.0 * kKiB, false) +
                          profile.tail[0].power_w * 2.0 +  // Truncated inter-transfer tail.
                          profile.TotalTailEnergy();       // Full tail after the last.
  EXPECT_NEAR(machine.report().total_energy_j(), expected, 1e-9);
}

TEST(RadioMachineTest, ResumeFromFachPaysReducedPromotion) {
  const RadioProfile profile = ThreeGProfile();
  RadioMachine machine(profile);
  machine.Submit(AdFetch(0.0));
  const double completion = machine.busy_until();
  // 8 s after completion: past the 5 s DCH tail, inside the FACH tail.
  const auto second = machine.Submit(AdFetch(completion + 8.0));
  EXPECT_DOUBLE_EQ(second.start_time,
                   completion + 8.0 + profile.tail[1].resume_latency_s);
}

TEST(RadioMachineTest, FullIdlePaysFullPromotion) {
  const RadioProfile profile = ThreeGProfile();
  RadioMachine machine(profile);
  machine.Submit(AdFetch(0.0));
  const double completion = machine.busy_until();
  const double long_gap = profile.TotalTailDuration() + 100.0;
  const auto second = machine.Submit(AdFetch(completion + long_gap));
  EXPECT_DOUBLE_EQ(second.start_time,
                   completion + long_gap + profile.promo_latency_s);
}

TEST(RadioMachineTest, QueuedTransferStartsAtCompletion) {
  const RadioProfile profile = ThreeGProfile();
  RadioMachine machine(profile);
  machine.Submit(AdFetch(0.0));
  const double busy = machine.busy_until();
  // Requested while the first is still in flight.
  const auto second = machine.Submit(AdFetch(1.0));
  EXPECT_DOUBLE_EQ(second.start_time, busy);
}

TEST(RadioMachineTest, TailAttributedToCausingCategory) {
  const RadioProfile profile = ThreeGProfile();
  RadioMachine machine(profile);
  machine.Submit(Content(0.0));
  const double completion = machine.busy_until();
  machine.Submit(AdFetch(completion + 2.0));
  machine.Finalize(1e6);
  const EnergyReport& report = machine.report();
  // Content caused the (truncated 2 s) first tail; the ad owns the full final tail.
  EXPECT_NEAR(report.For(TrafficCategory::kAppContent).tail_j,
              profile.tail[0].power_w * 2.0, 1e-9);
  EXPECT_NEAR(report.For(TrafficCategory::kAdFetch).tail_j, profile.TotalTailEnergy(), 1e-9);
}

TEST(RadioMachineTest, FinalizeTruncatesAtHorizon) {
  const RadioProfile profile = ThreeGProfile();
  RadioMachine machine(profile);
  machine.Submit(AdFetch(0.0));
  const double completion = machine.busy_until();
  machine.Finalize(completion + 3.0);  // Horizon cuts into the 5 s DCH tail.
  const double expected = profile.promo_power_w * profile.promo_latency_s +
                          profile.active_power_w * profile.TransferDuration(3.0 * kKiB, false) +
                          profile.tail[0].power_w * 3.0;
  EXPECT_NEAR(machine.report().total_energy_j(), expected, 1e-9);
}

TEST(RadioMachineTest, FinalizeWithNoActivityIsZero) {
  RadioMachine machine(ThreeGProfile());
  machine.Finalize(100.0);
  EXPECT_DOUBLE_EQ(machine.report().total_energy_j(), 0.0);
  EXPECT_EQ(machine.report().total_transfers(), 0);
}

TEST(RadioMachineTest, BytesAndCountsTracked) {
  RadioMachine machine(ThreeGProfile());
  machine.Submit(AdFetch(0.0, 1000.0));
  machine.Submit(AdFetch(100.0, 2000.0));
  machine.Submit(Content(200.0, 5000.0));
  machine.Finalize(1e6);
  const EnergyReport& report = machine.report();
  EXPECT_EQ(report.For(TrafficCategory::kAdFetch).transfers, 2);
  EXPECT_DOUBLE_EQ(report.For(TrafficCategory::kAdFetch).bytes, 3000.0);
  EXPECT_EQ(report.For(TrafficCategory::kAppContent).transfers, 1);
  EXPECT_DOUBLE_EQ(report.total_bytes(), 8000.0);
  EXPECT_EQ(report.total_transfers(), 3);
}

TEST(RadioMachineTest, CategoryShareSumsToOne) {
  RadioMachine machine(ThreeGProfile());
  machine.Submit(AdFetch(0.0));
  machine.Submit(Content(50.0));
  machine.Finalize(1e6);
  double total_share = 0.0;
  for (int c = 0; c < kNumTrafficCategories; ++c) {
    total_share += machine.report().CategoryShare(static_cast<TrafficCategory>(c));
  }
  EXPECT_NEAR(total_share, 1.0, 1e-12);
}

TEST(RadioMachineTest, IdealProfileChargesOnlyActiveTime) {
  const RadioProfile profile = IdealProfile();
  RadioMachine machine(profile);
  machine.Submit(AdFetch(0.0, 187500.0));  // 1 s at 1.5 Mbps, zero RTT.
  machine.Finalize(1e6);
  EXPECT_NEAR(machine.report().total_energy_j(), profile.active_power_w * 1.0, 1e-9);
}

TEST(RadioMachineTest, MergeAddsReports) {
  RadioMachine a(ThreeGProfile());
  a.Submit(AdFetch(0.0));
  a.Finalize(1e6);
  RadioMachine b(ThreeGProfile());
  b.Submit(Content(0.0));
  b.Finalize(1e6);
  EnergyReport merged = a.report();
  merged.Merge(b.report());
  EXPECT_NEAR(merged.total_energy_j(),
              a.report().total_energy_j() + b.report().total_energy_j(), 1e-9);
  EXPECT_EQ(merged.total_transfers(), 2);
}

TEST(RadioMachineDeathTest, OutOfOrderSubmitAborts) {
  RadioMachine machine(ThreeGProfile());
  machine.Submit(AdFetch(100.0));
  EXPECT_DEATH(machine.Submit(AdFetch(50.0)), "order");
}

TEST(RadioMachineDeathTest, SubmitAfterFinalizeAborts) {
  RadioMachine machine(ThreeGProfile());
  machine.Finalize(10.0);
  EXPECT_DEATH(machine.Submit(AdFetch(20.0)), "Finalize");
}

TEST(RadioMachineDeathTest, DoubleFinalizeAborts) {
  RadioMachine machine(ThreeGProfile());
  machine.Finalize(10.0);
  EXPECT_DEATH(machine.Finalize(20.0), "twice");
}

// Property: total energy is monotonically non-increasing as the same
// transfers are spaced closer together (batching never costs more).
class BatchingPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(BatchingPropertyTest, TighterSpacingNeverCostsMore) {
  const double spacing = GetParam();
  const RadioProfile profile = ThreeGProfile();
  auto energy_at = [&](double gap) {
    std::vector<Transfer> transfers;
    for (int i = 0; i < 10; ++i) {
      transfers.push_back(AdFetch(static_cast<double>(i) * gap));
    }
    return SimulateTransfers(profile, transfers, 1e7).total_energy_j();
  };
  EXPECT_LE(energy_at(spacing), energy_at(spacing * 2.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Spacings, BatchingPropertyTest,
                         ::testing::Values(0.5, 1.0, 3.0, 6.0, 10.0, 20.0, 60.0, 300.0));

TEST(RadioMachineTest, BulkBeatsSpacedFetches) {
  // The prefetching premise: N ads in one transfer cost far less than N
  // transfers a refresh-interval apart.
  const RadioProfile profile = ThreeGProfile();
  std::vector<Transfer> spaced;
  for (int i = 0; i < 20; ++i) {
    spaced.push_back(AdFetch(static_cast<double>(i) * 30.0));
  }
  const double spaced_energy = SimulateTransfers(profile, spaced, 1e7).total_energy_j();
  const std::vector<Transfer> bulk = {AdFetch(0.0, 20.0 * 3.0 * kKiB)};
  const double bulk_energy = SimulateTransfers(profile, bulk, 1e7).total_energy_j();
  EXPECT_GT(spaced_energy / bulk_energy, 5.0);
}

TEST(RadioMachineTest, StateResidencyAccounted) {
  const RadioProfile profile = ThreeGProfile();
  RadioMachine machine(profile);
  machine.Submit(AdFetch(0.0));
  machine.Finalize(1e6);
  const EnergyReport& report = machine.report();
  EXPECT_NEAR(report.promo_time_s, profile.promo_latency_s, 1e-12);
  EXPECT_NEAR(report.active_time_s, profile.TransferDuration(3.0 * kKiB, false), 1e-12);
  EXPECT_NEAR(report.tail_time_s, profile.TotalTailDuration(), 1e-12);
}

}  // namespace
}  // namespace pad
