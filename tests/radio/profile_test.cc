#include "src/radio/profile.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/radio/transfer.h"

namespace pad {
namespace {

TEST(ProfileTest, BuiltinsValidate) {
  ThreeGProfile().Validate();
  LteProfile().Validate();
  WifiProfile().Validate();
  IdealProfile().Validate();
}

TEST(ProfileTest, TransferDurationIncludesRttAndSerialization) {
  const RadioProfile profile = ThreeGProfile();
  // 1.5 Mbps downlink: 187500 bytes take 1 s on the wire + 0.2 s RTT.
  EXPECT_NEAR(profile.TransferDuration(187500.0, /*uplink=*/false), 1.2, 1e-9);
  // Uplink is slower (0.5 Mbps).
  EXPECT_GT(profile.TransferDuration(187500.0, /*uplink=*/true),
            profile.TransferDuration(187500.0, /*uplink=*/false));
}

TEST(ProfileTest, ZeroBytesStillPaysRtt) {
  const RadioProfile profile = ThreeGProfile();
  EXPECT_NEAR(profile.TransferDuration(0.0, false), profile.rtt_s, 1e-12);
}

TEST(ProfileTest, ThreeGTailStructure) {
  const RadioProfile profile = ThreeGProfile();
  ASSERT_EQ(profile.tail.size(), 2u);
  EXPECT_NEAR(profile.TotalTailDuration(), 17.0, 1e-9);
  // 5 s at 0.8 W + 12 s at 0.46 W.
  EXPECT_NEAR(profile.TotalTailEnergy(), 5.0 * 0.8 + 12.0 * 0.46, 1e-9);
  // Resuming from the DCH tail is free; from the FACH tail costs a promotion.
  EXPECT_DOUBLE_EQ(profile.tail[0].resume_latency_s, 0.0);
  EXPECT_GT(profile.tail[1].resume_latency_s, 0.0);
}

TEST(ProfileTest, IsolatedTransferEnergyClosedForm) {
  const RadioProfile profile = ThreeGProfile();
  const double bytes = 3.0 * kKiB;
  const double expected = profile.promo_power_w * profile.promo_latency_s +
                          profile.active_power_w * profile.TransferDuration(bytes, false) +
                          profile.TotalTailEnergy();
  EXPECT_NEAR(profile.IsolatedTransferEnergy(bytes, false), expected, 1e-9);
}

TEST(ProfileTest, SmallTransferDominatedByTail) {
  // The paper's core observation: a few-KB ad costs ~10 J on 3G, almost all
  // of it promotion + tail, not bytes.
  const RadioProfile profile = ThreeGProfile();
  const double total = profile.IsolatedTransferEnergy(3.0 * kKiB, false);
  const double tail_and_promo =
      profile.TotalTailEnergy() + profile.promo_power_w * profile.promo_latency_s;
  EXPECT_GT(total, 9.0);
  EXPECT_LT(total, 13.0);
  EXPECT_GT(tail_and_promo / total, 0.95);
}

TEST(ProfileTest, WifiMuchCheaperThanCellular) {
  const double on_3g = ThreeGProfile().IsolatedTransferEnergy(3.0 * kKiB, false);
  const double on_lte = LteProfile().IsolatedTransferEnergy(3.0 * kKiB, false);
  const double on_wifi = WifiProfile().IsolatedTransferEnergy(3.0 * kKiB, false);
  EXPECT_GT(on_3g / on_wifi, 20.0);
  EXPECT_GT(on_lte / on_wifi, 20.0);
}

TEST(ProfileTest, IdealProfileHasNoOverhead) {
  const RadioProfile profile = IdealProfile();
  EXPECT_DOUBLE_EQ(profile.TotalTailEnergy(), 0.0);
  EXPECT_DOUBLE_EQ(profile.promo_latency_s, 0.0);
}

TEST(ProfileDeathTest, InvalidProfileAborts) {
  RadioProfile profile = ThreeGProfile();
  profile.downlink_bps = 0.0;
  EXPECT_DEATH(profile.Validate(), "downlink");
}

TEST(TrafficCategoryTest, NamesAreStable) {
  EXPECT_STREQ(TrafficCategoryName(TrafficCategory::kAdFetch), "ad_fetch");
  EXPECT_STREQ(TrafficCategoryName(TrafficCategory::kAdPrefetch), "ad_prefetch");
  EXPECT_STREQ(TrafficCategoryName(TrafficCategory::kSlotReport), "slot_report");
  EXPECT_STREQ(TrafficCategoryName(TrafficCategory::kAppContent), "app_content");
  EXPECT_STREQ(TrafficCategoryName(TrafficCategory::kOther), "other");
}

}  // namespace
}  // namespace pad
