// Tests for the Markov and weekly-seasonal predictors and the generator's
// weekend structure they exploit.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/prediction/evaluation.h"
#include "src/prediction/predictors.h"
#include "src/trace/generator.h"
#include "src/trace/trace_stats.h"

namespace pad {
namespace {

TEST(MarkovPredictorTest, BucketBoundaries) {
  EXPECT_EQ(MarkovPredictor::BucketOf(0), 0);
  EXPECT_EQ(MarkovPredictor::BucketOf(1), 1);
  EXPECT_EQ(MarkovPredictor::BucketOf(2), 2);
  EXPECT_EQ(MarkovPredictor::BucketOf(3), 3);
  EXPECT_EQ(MarkovPredictor::BucketOf(4), 3);
  EXPECT_EQ(MarkovPredictor::BucketOf(5), 4);
  EXPECT_EQ(MarkovPredictor::BucketOf(8), 4);
  EXPECT_EQ(MarkovPredictor::BucketOf(9), 5);
  EXPECT_EQ(MarkovPredictor::BucketOf(16), 5);
  EXPECT_EQ(MarkovPredictor::BucketOf(17), 6);
  EXPECT_EQ(MarkovPredictor::BucketOf(1000), 6);
}

TEST(MarkovPredictorTest, UnseededPredictsZero) {
  MarkovPredictor predictor;
  EXPECT_DOUBLE_EQ(predictor.Predict(0), 0.0);
  EXPECT_DOUBLE_EQ(predictor.PredictVariance(0), 0.0);
}

TEST(MarkovPredictorTest, LearnsDeterministicAlternation) {
  // 0, 10, 0, 10, ... — last-value is maximally wrong, Markov is exact.
  MarkovPredictor markov;
  LastValuePredictor last_value;
  std::vector<int> series;
  for (int i = 0; i < 60; ++i) {
    series.push_back((i % 2) * 10);
  }
  const PredictionEval markov_eval = EvaluatePredictor(markov, series, 10);
  const PredictionEval last_eval = EvaluatePredictor(last_value, series, 10);
  EXPECT_LT(markov_eval.abs_error.mean(), 0.5);
  EXPECT_GT(last_eval.abs_error.mean(), 9.0);
}

TEST(MarkovPredictorTest, VarianceReflectsTransitionNoise) {
  // From bucket 0 the next count is always 4 (certain); from bucket 3-4 the
  // next count alternates 0 or 8 (noisy).
  MarkovPredictor predictor;
  const std::vector<int> series = {0, 4, 0, 4, 8, 0, 4, 8, 0, 4, 0, 4, 8};
  for (int w = 0; w < static_cast<int>(series.size()); ++w) {
    predictor.Observe(w, series[static_cast<size_t>(w)]);
  }
  // After the last observation (8 -> bucket 4), check both contexts exist.
  EXPECT_GE(predictor.PredictVariance(100), 0.0);
}

TEST(MarkovPredictorTest, ConstantSeriesConverges) {
  MarkovPredictor predictor;
  for (int w = 0; w < 50; ++w) {
    predictor.Observe(w, 5);
  }
  EXPECT_NEAR(predictor.Predict(50), 5.0, 1e-9);
  EXPECT_NEAR(predictor.PredictVariance(50), 0.0, 1e-9);
}

TEST(DayOfWeekPredictorTest, SeparatesWeekendFromWeekday) {
  // 1 window per day; weekdays 2 slots, weekends 10.
  auto predictor = MakePredictor(PredictorKind::kDayOfWeek, /*windows_per_day=*/1);
  for (int day = 0; day < 70; ++day) {
    predictor->Observe(day, (day % 7 >= 5) ? 10 : 2);
  }
  EXPECT_NEAR(predictor->Predict(70), 2.0, 0.01);   // Monday.
  EXPECT_NEAR(predictor->Predict(75), 10.0, 0.01);  // Saturday.
}

TEST(DayOfWeekPredictorTest, BeatsDailySeasonalOnWeeklyPattern) {
  auto weekly = MakePredictor(PredictorKind::kDayOfWeek, 1);
  auto daily = MakePredictor(PredictorKind::kTimeOfDay, 1);
  std::vector<int> series;
  for (int day = 0; day < 140; ++day) {
    series.push_back((day % 7 >= 5) ? 12 : 3);
  }
  const PredictionEval weekly_eval = EvaluatePredictor(*weekly, series, 14);
  const PredictionEval daily_eval = EvaluatePredictor(*daily, series, 14);
  EXPECT_LT(weekly_eval.abs_error.mean(), daily_eval.abs_error.mean() / 2.0);
}

TEST(GeneratorWeeklyTest, WeekendsAreBusier) {
  PopulationConfig config;
  config.num_users = 150;
  config.horizon_s = 28.0 * kDay;
  config.weekend_rate_multiplier = 1.5;
  const Population population = GeneratePopulation(config);
  double weekday_sessions = 0.0;
  double weekend_sessions = 0.0;
  for (const UserTrace& user : population.users) {
    for (const Session& session : user.sessions) {
      ((DayIndex(session.start_time) % 7 >= 5) ? weekend_sessions : weekday_sessions) += 1.0;
    }
  }
  // 2 weekend days vs 5 weekdays at 1.5x: expect per-day ratio ~1.5.
  const double ratio = (weekend_sessions / 2.0) / (weekday_sessions / 5.0);
  EXPECT_NEAR(ratio, 1.5, 0.15);
}

TEST(GeneratorWeeklyTest, MultiplierOneDisablesStructure) {
  PopulationConfig config;
  config.num_users = 150;
  config.horizon_s = 28.0 * kDay;
  config.weekend_rate_multiplier = 1.0;
  config.weekend_phase_shift_h = 0.0;
  const Population population = GeneratePopulation(config);
  double weekday_sessions = 0.0;
  double weekend_sessions = 0.0;
  for (const UserTrace& user : population.users) {
    for (const Session& session : user.sessions) {
      ((DayIndex(session.start_time) % 7 >= 5) ? weekend_sessions : weekday_sessions) += 1.0;
    }
  }
  const double ratio = (weekend_sessions / 2.0) / (weekday_sessions / 5.0);
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(FactoryTest, NewKindsConstruct) {
  for (PredictorKind kind : {PredictorKind::kDayOfWeek, PredictorKind::kMarkov}) {
    auto predictor = MakePredictor(kind, 24);
    ASSERT_NE(predictor, nullptr);
    EXPECT_FALSE(predictor->name().empty());
  }
  EXPECT_EQ(AllPredictorKinds().size(), 9u);
}

}  // namespace
}  // namespace pad
