#include "src/prediction/predictors.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pad {
namespace {

// Drives the online protocol over a series and returns the prediction made
// for the final window.
double FinalPrediction(SlotPredictor& predictor, const std::vector<int>& series) {
  double last = 0.0;
  for (int w = 0; w < static_cast<int>(series.size()); ++w) {
    last = predictor.Predict(w);
    predictor.Observe(w, series[static_cast<size_t>(w)]);
  }
  return last;
}

TEST(LastValueTest, TracksPreviousObservation) {
  LastValuePredictor predictor;
  EXPECT_DOUBLE_EQ(predictor.Predict(0), 0.0);
  predictor.Observe(0, 7);
  EXPECT_DOUBLE_EQ(predictor.Predict(1), 7.0);
  predictor.Observe(1, 2);
  EXPECT_DOUBLE_EQ(predictor.Predict(2), 2.0);
}

TEST(SlidingMeanTest, AveragesWindow) {
  SlidingMeanPredictor predictor(3);
  predictor.Observe(0, 3);
  predictor.Observe(1, 6);
  EXPECT_DOUBLE_EQ(predictor.Predict(2), 4.5);
  predictor.Observe(2, 9);
  EXPECT_DOUBLE_EQ(predictor.Predict(3), 6.0);
  predictor.Observe(3, 12);  // Drops the 3.
  EXPECT_DOUBLE_EQ(predictor.Predict(4), 9.0);
}

TEST(SlidingMeanTest, VarianceMatchesSample) {
  SlidingMeanPredictor predictor(10);
  for (int count : {2, 4, 6}) {
    predictor.Observe(0, count);
  }
  // Sample variance of {2,4,6} = 4.
  EXPECT_NEAR(predictor.PredictVariance(0), 4.0, 1e-12);
}

TEST(EwmaTest, ConvergesToConstant) {
  EwmaPredictor predictor(0.3);
  for (int w = 0; w < 50; ++w) {
    predictor.Observe(w, 5);
  }
  EXPECT_NEAR(predictor.Predict(50), 5.0, 1e-6);
  EXPECT_NEAR(predictor.PredictVariance(50), 0.0, 0.1);
}

TEST(EwmaTest, SeedsWithFirstObservation) {
  EwmaPredictor predictor(0.1);
  predictor.Observe(0, 10);
  EXPECT_DOUBLE_EQ(predictor.Predict(1), 10.0);
}

TEST(EwmaTest, RespondsToShift) {
  EwmaPredictor fast(0.9);
  EwmaPredictor slow(0.1);
  for (int w = 0; w < 20; ++w) {
    fast.Observe(w, w < 10 ? 0 : 10);
    slow.Observe(w, w < 10 ? 0 : 10);
  }
  EXPECT_GT(fast.Predict(20), slow.Predict(20));
}

TEST(TimeOfDayTest, LearnsSeasonalPattern) {
  // 4 windows per "day", pattern {0, 2, 8, 1} repeated.
  const std::vector<int> pattern = {0, 2, 8, 1};
  TimeOfDayPredictor predictor(4, 0.5);
  for (int w = 0; w < 40; ++w) {
    predictor.Observe(w, pattern[static_cast<size_t>(w % 4)]);
  }
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(predictor.Predict(40 + k), pattern[static_cast<size_t>(k)], 0.01);
  }
}

TEST(TimeOfDayTest, UnseenSlotFallsBackToGlobal) {
  TimeOfDayPredictor predictor(4, 0.5);
  predictor.Observe(0, 6);  // Only window-of-day 0 seen.
  EXPECT_GT(predictor.Predict(1), 0.0);  // Global fallback, not zero.
}

TEST(TimeOfDayTest, VarianceReflectsWindowNoise) {
  TimeOfDayPredictor predictor(2, 0.3);
  // Window-of-day 0 constant; window-of-day 1 alternates wildly.
  for (int d = 0; d < 30; ++d) {
    predictor.Observe(2 * d, 5);
    predictor.Observe(2 * d + 1, (d % 2 == 0) ? 0 : 10);
  }
  EXPECT_LT(predictor.PredictVariance(60), predictor.PredictVariance(61));
}

TEST(TimeOfDayTest, BeatsEwmaOnSeasonalSeries) {
  const std::vector<int> pattern = {0, 0, 10, 10, 2, 0};
  std::vector<int> series;
  for (int d = 0; d < 30; ++d) {
    series.insert(series.end(), pattern.begin(), pattern.end());
  }
  TimeOfDayPredictor tod(6, 0.3);
  EwmaPredictor ewma(0.3);
  double tod_error = 0.0;
  double ewma_error = 0.0;
  for (int w = 0; w < static_cast<int>(series.size()); ++w) {
    const int actual = series[static_cast<size_t>(w)];
    if (w >= 12) {
      tod_error += std::fabs(tod.Predict(w) - actual);
      ewma_error += std::fabs(ewma.Predict(w) - actual);
    }
    tod.Observe(w, actual);
    ewma.Observe(w, actual);
  }
  EXPECT_LT(tod_error, ewma_error / 5.0);
}

TEST(QuantileTest, QuantilesOfHistory) {
  QuantilePredictor median(1, 0.5);
  QuantilePredictor low(1, 0.0);
  QuantilePredictor high(1, 1.0);
  for (int count : {1, 2, 3, 4, 100}) {
    median.Observe(0, count);
    low.Observe(0, count);
    high.Observe(0, count);
  }
  EXPECT_DOUBLE_EQ(median.Predict(5), 3.0);
  EXPECT_DOUBLE_EQ(low.Predict(5), 1.0);
  EXPECT_DOUBLE_EQ(high.Predict(5), 100.0);
}

TEST(QuantileTest, OrderingHolds) {
  QuantilePredictor q25(1, 0.25);
  QuantilePredictor q50(1, 0.50);
  QuantilePredictor q75(1, 0.75);
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    const int count = rng.Poisson(6.0);
    q25.Observe(0, count);
    q50.Observe(0, count);
    q75.Observe(0, count);
  }
  EXPECT_LE(q25.Predict(40), q50.Predict(40));
  EXPECT_LE(q50.Predict(40), q75.Predict(40));
}

TEST(QuantileTest, BoundedHistoryForgetsOldRegime) {
  QuantilePredictor predictor(1, 0.5, /*max_history_days=*/5);
  for (int i = 0; i < 50; ++i) {
    predictor.Observe(0, 100);
  }
  for (int i = 0; i < 5; ++i) {
    predictor.Observe(0, 1);
  }
  EXPECT_DOUBLE_EQ(predictor.Predict(55), 1.0);
}

TEST(QuantileTest, EmptyHistoryPredictsZero) {
  QuantilePredictor predictor(4, 0.5);
  EXPECT_DOUBLE_EQ(predictor.Predict(0), 0.0);
}

TEST(OracleTest, ReturnsTruthAndZeroVariance) {
  OraclePredictor oracle({3, 1, 4, 1, 5});
  EXPECT_DOUBLE_EQ(oracle.Predict(0), 3.0);
  EXPECT_DOUBLE_EQ(oracle.Predict(4), 5.0);
  EXPECT_DOUBLE_EQ(oracle.Predict(100), 0.0);  // Past the series.
  EXPECT_DOUBLE_EQ(oracle.PredictVariance(2), 0.0);
}

TEST(NoisyOracleTest, ZeroSigmaIsExact) {
  NoisyOraclePredictor oracle({7, 7, 7}, 0.0, 1);
  EXPECT_DOUBLE_EQ(oracle.Predict(1), 7.0);
}

TEST(NoisyOracleTest, NoiseIsMeanPreserving) {
  std::vector<int> truth(4000, 10);
  NoisyOraclePredictor oracle(truth, 0.5, 2);
  double sum = 0.0;
  for (int w = 0; w < 4000; ++w) {
    sum += oracle.Predict(w);
  }
  EXPECT_NEAR(sum / 4000.0, 10.0, 0.3);
}

TEST(NoisyOracleTest, VarianceMatchesLogNormalFormula) {
  NoisyOraclePredictor oracle({10}, 0.5, 3);
  const double expected = 100.0 * (std::exp(0.25) - 1.0);
  EXPECT_NEAR(oracle.PredictVariance(0), expected, 1e-9);
}

TEST(FactoryTest, AllKindsConstructAndName) {
  for (PredictorKind kind : AllPredictorKinds()) {
    const auto predictor = MakePredictor(kind, 24);
    ASSERT_NE(predictor, nullptr);
    EXPECT_FALSE(predictor->name().empty());
    EXPECT_STRNE(PredictorKindName(kind), "unknown");
  }
}

TEST(FactoryTest, PredictionsNeverNegativeOnRandomSeries) {
  Rng rng(11);
  std::vector<int> series;
  for (int i = 0; i < 200; ++i) {
    series.push_back(rng.Poisson(3.0));
  }
  for (PredictorKind kind : AllPredictorKinds()) {
    const auto predictor = MakePredictor(kind, 24);
    for (int w = 0; w < 200; ++w) {
      EXPECT_GE(predictor->Predict(w), 0.0) << PredictorKindName(kind);
      EXPECT_GE(predictor->PredictVariance(w), 0.0) << PredictorKindName(kind);
      predictor->Observe(w, series[static_cast<size_t>(w)]);
    }
  }
}

TEST(PredictorsTest, ConstantSeriesPredictedExactlyByAll) {
  std::vector<int> series(100, 4);
  for (PredictorKind kind : AllPredictorKinds()) {
    const auto predictor = MakePredictor(kind, 10);
    const double final_prediction = FinalPrediction(*predictor, series);
    EXPECT_NEAR(final_prediction, 4.0, 0.01) << PredictorKindName(kind);
  }
}

}  // namespace
}  // namespace pad
