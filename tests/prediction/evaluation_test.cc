#include "src/prediction/evaluation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/prediction/predictors.h"

namespace pad {
namespace {

TEST(EvaluationTest, OracleHasZeroError) {
  const std::vector<int> series = {3, 1, 4, 1, 5, 9, 2, 6};
  OraclePredictor oracle(series);
  const PredictionEval eval = EvaluatePredictor(oracle, series, /*warmup_windows=*/0);
  EXPECT_EQ(eval.windows_scored, 8);
  EXPECT_DOUBLE_EQ(eval.abs_error.mean(), 0.0);
  EXPECT_DOUBLE_EQ(eval.rmse, 0.0);
  EXPECT_DOUBLE_EQ(eval.over_rate, 0.0);
  EXPECT_DOUBLE_EQ(eval.under_rate, 0.0);
  EXPECT_DOUBLE_EQ(eval.total_predicted, eval.total_actual);
}

TEST(EvaluationTest, WarmupWindowsNotScored) {
  const std::vector<int> series = {10, 10, 10, 10};
  LastValuePredictor predictor;
  const PredictionEval eval = EvaluatePredictor(predictor, series, /*warmup_windows=*/2);
  EXPECT_EQ(eval.windows_scored, 2);
  // After warmup, last-value predicts 10 exactly.
  EXPECT_DOUBLE_EQ(eval.abs_error.mean(), 0.0);
}

TEST(EvaluationTest, LastValueErrorOnAlternatingSeries) {
  // Series 0,4,0,4,... last-value is always wrong by 4 after the first.
  std::vector<int> series;
  for (int i = 0; i < 20; ++i) {
    series.push_back((i % 2) * 4);
  }
  LastValuePredictor predictor;
  const PredictionEval eval = EvaluatePredictor(predictor, series, /*warmup_windows=*/1);
  EXPECT_NEAR(eval.abs_error.mean(), 4.0, 1e-9);
  EXPECT_NEAR(eval.rmse, 4.0, 1e-9);
  // Over-predicts on the 0 windows, under-predicts on the 4 windows.
  EXPECT_NEAR(eval.over_rate + eval.under_rate, 1.0, 1e-9);
}

TEST(EvaluationTest, SignedErrorDistinguishesBias) {
  // Constant over-predictor: oracle on a shifted series.
  const std::vector<int> actual = {2, 2, 2, 2};
  OraclePredictor over({5, 5, 5, 5});
  const PredictionEval eval = EvaluatePredictor(over, actual, 0);
  EXPECT_DOUBLE_EQ(eval.signed_error.mean(), 3.0);
  EXPECT_DOUBLE_EQ(eval.over_rate, 1.0);
  EXPECT_DOUBLE_EQ(eval.under_rate, 0.0);
  EXPECT_DOUBLE_EQ(eval.total_predicted, 20.0);
  EXPECT_DOUBLE_EQ(eval.total_actual, 8.0);
}

TEST(EvaluationTest, RelativeErrorGuardsZeroActual) {
  OraclePredictor over({3});
  const std::vector<int> actual = {0};
  const PredictionEval eval = EvaluatePredictor(over, actual, 0);
  // |3 - 0| / max(0, 1) = 3.
  EXPECT_DOUBLE_EQ(eval.relative_error.mean(), 3.0);
}

TEST(EvaluationTest, EmptySeriesScoresNothing) {
  LastValuePredictor predictor;
  const PredictionEval eval = EvaluatePredictor(predictor, {}, 0);
  EXPECT_EQ(eval.windows_scored, 0);
  EXPECT_DOUBLE_EQ(eval.rmse, 0.0);
}

TEST(EvaluationTest, HalfUnitErrorsCountAsNeither) {
  // Prediction within +-0.5 of actual counts as neither over nor under.
  OraclePredictor nearly({4});  // Will predict 4.0 against actual 4.
  const std::vector<int> actual = {4};
  const PredictionEval eval = EvaluatePredictor(nearly, actual, 0);
  EXPECT_DOUBLE_EQ(eval.over_rate, 0.0);
  EXPECT_DOUBLE_EQ(eval.under_rate, 0.0);
}

}  // namespace
}  // namespace pad
