#include "src/prediction/slot_series.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace pad {
namespace {

SlotEvent Slot(double t) { return SlotEvent{0, 0, t}; }

TEST(SlotSeriesTest, BinsByWindow) {
  const std::vector<SlotEvent> slots = {Slot(0.0), Slot(10.0), Slot(3600.0), Slot(7300.0)};
  const SlotSeries series = BinSlots(slots, 3.0 * kHour, kHour);
  ASSERT_EQ(series.num_windows(), 3);
  EXPECT_EQ(series.counts[0], 2);
  EXPECT_EQ(series.counts[1], 1);
  EXPECT_EQ(series.counts[2], 1);
  EXPECT_EQ(series.TotalSlots(), 4);
}

TEST(SlotSeriesTest, DropsSlotsPastHorizon) {
  const std::vector<SlotEvent> slots = {Slot(0.0), Slot(2.0 * kHour + 1.0)};
  const SlotSeries series = BinSlots(slots, 2.0 * kHour, kHour);
  EXPECT_EQ(series.TotalSlots(), 1);
}

TEST(SlotSeriesTest, HorizonRoundsUpToWholeWindows) {
  const SlotSeries series = BinSlots({}, 90.0 * kMinute, kHour);
  EXPECT_EQ(series.num_windows(), 2);
}

TEST(SlotSeriesTest, WindowsPerDay) {
  EXPECT_EQ(BinSlots({}, kDay, kHour).WindowsPerDay(), 24);
  EXPECT_EQ(BinSlots({}, kDay, 3.0 * kHour).WindowsPerDay(), 8);
  EXPECT_EQ(BinSlots({}, kDay, kDay).WindowsPerDay(), 1);
}

TEST(SlotSeriesTest, WindowOfDayWraps) {
  const SlotSeries series = BinSlots({}, 3.0 * kDay, 6.0 * kHour);
  EXPECT_EQ(series.WindowOfDay(0), 0);
  EXPECT_EQ(series.WindowOfDay(3), 3);
  EXPECT_EQ(series.WindowOfDay(4), 0);
  EXPECT_EQ(series.WindowOfDay(11), 3);
}

TEST(SlotSeriesDeathTest, NonDividingWindowAborts) {
  const SlotSeries series = BinSlots({}, kDay, 7.0 * kHour);
  EXPECT_DEATH(series.WindowsPerDay(), "divide");
}

TEST(SlotSeriesTest, BoundarySlotGoesToLaterWindow) {
  const std::vector<SlotEvent> slots = {Slot(kHour)};
  const SlotSeries series = BinSlots(slots, 2.0 * kHour, kHour);
  EXPECT_EQ(series.counts[0], 0);
  EXPECT_EQ(series.counts[1], 1);
}

}  // namespace
}  // namespace pad
