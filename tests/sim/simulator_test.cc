#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace pad {
namespace {

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed_events(), 3);
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.ScheduleAt(7.5, [&] { seen = sim.now(); });
  sim.RunAll();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<double> times;
  sim.ScheduleAt(10.0, [&] {
    sim.ScheduleAfter(5.0, [&] { times.push_back(sim.now()); });
  });
  sim.RunAll();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 15.0);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(1.0, [&] { ++ran; });
  sim.ScheduleAt(2.0, [&] { ++ran; });
  sim.ScheduleAt(3.0, [&] { ++ran; });
  sim.RunUntil(2.0);
  EXPECT_EQ(ran, 2);  // Events at exactly `until` run.
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending_events(), 1);
  sim.RunAll();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(100.0);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
  sim.RunUntil(150.0, /*advance_clock_to_until=*/false);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int ran = 0;
  const EventHandle handle = sim.ScheduleAt(1.0, [&] { ++ran; });
  EXPECT_TRUE(sim.Cancel(handle));
  EXPECT_FALSE(sim.Cancel(handle));  // Second cancel is a no-op.
  sim.RunAll();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sim.executed_events(), 0);
}

TEST(SimulatorTest, CancelInvalidHandle) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(EventHandle()));
}

TEST(SimulatorTest, CancelAfterExecutionReturnsFalse) {
  Simulator sim;
  const EventHandle handle = sim.ScheduleAt(1.0, [] {});
  sim.RunAll();
  EXPECT_FALSE(sim.Cancel(handle));
}

TEST(SimulatorTest, PendingCountExcludesCancelled) {
  Simulator sim;
  const EventHandle a = sim.ScheduleAt(1.0, [] {});
  sim.ScheduleAt(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1);
  sim.RunAll();
  EXPECT_EQ(sim.pending_events(), 0);
}

TEST(SimulatorTest, EventsScheduledDuringRunAreExecuted) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(1.0, recurse);
    }
  };
  sim.ScheduleAt(0.0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(1.0, [&] { ++ran; });
  sim.ScheduleAt(2.0, [&] { ++ran; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.ScheduleAt(10.0, [] {});
  sim.RunAll();
  EXPECT_DEATH(sim.ScheduleAt(5.0, [] {}), "past");
}

TEST(PeriodicProcessTest, FiresAtPeriod) {
  Simulator sim;
  std::vector<double> fires;
  PeriodicProcess proc(sim, 1.0, 2.0, [&] { fires.push_back(sim.now()); });
  sim.RunUntil(7.0);
  EXPECT_EQ(fires, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
}

TEST(PeriodicProcessTest, StopHalts) {
  Simulator sim;
  int count = 0;
  PeriodicProcess proc(sim, 0.0, 1.0, [&] {
    if (++count == 3) {
      proc.Stop();
    }
  });
  sim.RunUntil(100.0);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(proc.running());
}

TEST(PeriodicProcessTest, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicProcess proc(sim, 0.0, 1.0, [&] { ++count; });
    sim.RunUntil(2.0);
  }
  sim.RunUntil(10.0);
  EXPECT_EQ(count, 3);  // 0, 1, 2 fired before destruction.
}

}  // namespace
}  // namespace pad
