#include "src/trace/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/units.h"

namespace pad {
namespace {

PopulationConfig SmallConfig() {
  PopulationConfig config;
  config.num_users = 50;
  config.horizon_s = 7.0 * kDay;
  config.seed = 123;
  return config;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const Population a = GeneratePopulation(SmallConfig());
  const Population b = GeneratePopulation(SmallConfig());
  ASSERT_EQ(a.users.size(), b.users.size());
  ASSERT_EQ(a.TotalSessions(), b.TotalSessions());
  for (size_t u = 0; u < a.users.size(); ++u) {
    ASSERT_EQ(a.users[u].sessions.size(), b.users[u].sessions.size());
    for (size_t s = 0; s < a.users[u].sessions.size(); ++s) {
      EXPECT_DOUBLE_EQ(a.users[u].sessions[s].start_time, b.users[u].sessions[s].start_time);
      EXPECT_DOUBLE_EQ(a.users[u].sessions[s].duration_s, b.users[u].sessions[s].duration_s);
      EXPECT_EQ(a.users[u].sessions[s].app_id, b.users[u].sessions[s].app_id);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  PopulationConfig config = SmallConfig();
  const Population a = GeneratePopulation(config);
  config.seed = 456;
  const Population b = GeneratePopulation(config);
  EXPECT_NE(a.TotalSessions(), b.TotalSessions());
}

TEST(GeneratorTest, AddingUsersPreservesExistingTraces) {
  PopulationConfig config = SmallConfig();
  const Population small = GeneratePopulation(config);
  config.num_users = 60;
  const Population big = GeneratePopulation(config);
  // The first 50 users' traces must be identical: users have independent
  // forked RNG streams.
  for (size_t u = 0; u < 50; ++u) {
    ASSERT_EQ(small.users[u].sessions.size(), big.users[u].sessions.size());
    for (size_t s = 0; s < small.users[u].sessions.size(); ++s) {
      EXPECT_DOUBLE_EQ(small.users[u].sessions[s].start_time,
                       big.users[u].sessions[s].start_time);
    }
  }
}

TEST(GeneratorTest, SessionsSortedAndWithinHorizon) {
  const PopulationConfig config = SmallConfig();
  const Population population = GeneratePopulation(config);
  for (const UserTrace& user : population.users) {
    double prev = -1.0;
    for (const Session& session : user.sessions) {
      EXPECT_GE(session.start_time, prev);
      prev = session.start_time;
      EXPECT_GE(session.start_time, 0.0);
      EXPECT_LT(session.start_time, config.horizon_s);
      EXPECT_LE(session.end_time(), config.horizon_s + 1e-9);
      EXPECT_GE(session.duration_s, 0.0);
      EXPECT_LE(session.duration_s, config.max_session_s);
      EXPECT_GE(session.app_id, 0);
      EXPECT_LT(session.app_id, config.num_apps);
      EXPECT_EQ(session.user_id, user.user_id);
    }
  }
}

TEST(GeneratorTest, PopulationMeanRateRoughlyMatchesArchetypes) {
  PopulationConfig config = SmallConfig();
  config.num_users = 400;
  config.horizon_s = 14.0 * kDay;
  const Population population = GeneratePopulation(config);
  double expected_rate = 0.0;
  for (const UserArchetype& archetype : config.archetypes) {
    expected_rate += archetype.weight * archetype.sessions_per_day;
  }
  // Lognormal heterogeneity with sigma s inflates the mean by exp(s^2/2).
  expected_rate *= std::exp(config.rate_spread_sigma * config.rate_spread_sigma / 2.0);
  const double actual_rate = static_cast<double>(population.TotalSessions()) /
                             (config.num_users * config.horizon_s / kDay);
  EXPECT_NEAR(actual_rate / expected_rate, 1.0, 0.15);
}

TEST(GeneratorTest, UserParamsSampledFromArchetypes) {
  PopulationConfig config = SmallConfig();
  config.num_users = 500;
  const auto params = SampleUserParams(config);
  ASSERT_EQ(params.size(), 500u);
  std::array<int, 3> archetype_counts{};
  for (const UserParams& user : params) {
    ASSERT_GE(user.archetype, 0);
    ASSERT_LT(user.archetype, 3);
    ++archetype_counts[static_cast<size_t>(user.archetype)];
    EXPECT_GT(user.sessions_per_day, 0.0);
    EXPECT_EQ(user.app_rank.size(), static_cast<size_t>(config.num_apps));
  }
  // Mixture weights 0.35 / 0.45 / 0.20.
  EXPECT_NEAR(archetype_counts[0] / 500.0, 0.35, 0.07);
  EXPECT_NEAR(archetype_counts[1] / 500.0, 0.45, 0.07);
  EXPECT_NEAR(archetype_counts[2] / 500.0, 0.20, 0.07);
}

TEST(GeneratorTest, FlatDiurnalRemovesTimeOfDayStructure) {
  PopulationConfig config = SmallConfig();
  config.num_users = 200;
  config.flat_diurnal = true;
  config.phase_jitter_h = 0.0;
  const Population population = GeneratePopulation(config);
  std::array<double, 24> hourly{};
  double total = 0.0;
  for (const UserTrace& user : population.users) {
    for (const Session& session : user.sessions) {
      ++hourly[static_cast<size_t>(HourOfDay(session.start_time))];
      ++total;
    }
  }
  for (double count : hourly) {
    EXPECT_NEAR(count / total, 1.0 / 24.0, 0.012);
  }
}

TEST(GeneratorTest, TypicalDiurnalConcentratesEvenings) {
  PopulationConfig config = SmallConfig();
  config.num_users = 200;
  const Population population = GeneratePopulation(config);
  double evening = 0.0;
  double night = 0.0;
  double total = 0.0;
  for (const UserTrace& user : population.users) {
    for (const Session& session : user.sessions) {
      const double h = HourOfDay(session.start_time);
      if (h >= 18.0 && h < 22.0) {
        evening += 1.0;
      }
      if (h >= 2.0 && h < 6.0) {
        night += 1.0;
      }
      total += 1.0;
    }
  }
  EXPECT_GT(evening, 3.0 * night);
  EXPECT_GT(total, 0.0);
}

TEST(GeneratorTest, DayNoiseZeroGivesSteadierDays) {
  PopulationConfig steady = SmallConfig();
  steady.num_users = 100;
  steady.horizon_s = 28.0 * kDay;
  steady.day_noise_sigma = 1e-6;
  PopulationConfig noisy = steady;
  noisy.day_noise_sigma = 0.8;

  auto mean_day_cv = [](const Population& population) {
    double total_cv = 0.0;
    int users = 0;
    for (const UserTrace& user : population.users) {
      std::array<double, 28> days{};
      for (const Session& session : user.sessions) {
        ++days[static_cast<size_t>(std::min(27, DayIndex(session.start_time)))];
      }
      double mean = 0.0;
      for (double d : days) {
        mean += d;
      }
      mean /= 28.0;
      if (mean < 1.0) {
        continue;
      }
      double var = 0.0;
      for (double d : days) {
        var += (d - mean) * (d - mean);
      }
      var /= 27.0;
      total_cv += std::sqrt(var) / mean;
      ++users;
    }
    return total_cv / users;
  };

  EXPECT_LT(mean_day_cv(GeneratePopulation(steady)), mean_day_cv(GeneratePopulation(noisy)));
}

TEST(GeneratorTest, MinSessionDurationRespected) {
  PopulationConfig config = SmallConfig();
  config.min_session_s = 30.0;
  const Population population = GeneratePopulation(config);
  for (const UserTrace& user : population.users) {
    for (const Session& session : user.sessions) {
      // Horizon clipping may shorten the very last session only.
      if (session.end_time() < config.horizon_s - 1e-9) {
        EXPECT_GE(session.duration_s, 30.0);
      }
    }
  }
}

}  // namespace
}  // namespace pad
