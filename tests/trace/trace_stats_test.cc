#include "src/trace/trace_stats.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/trace/generator.h"

namespace pad {
namespace {

UserTrace MakeUser(std::vector<std::pair<double, double>> start_duration) {
  UserTrace user;
  user.user_id = 0;
  for (const auto& [start, duration] : start_duration) {
    user.sessions.push_back(Session{0, 0, start, duration});
  }
  return user;
}

TEST(TraceStatsTest, BasicCounts) {
  Population population;
  population.horizon_s = 2.0 * kDay;
  population.users.push_back(MakeUser({{100.0, 60.0}, {200.0, 30.0}}));
  population.users.push_back(MakeUser({{kDay + 100.0, 10.0}}));
  const TraceStats stats = ComputeTraceStats(population);
  EXPECT_EQ(stats.num_users, 2);
  EXPECT_EQ(stats.num_sessions, 3);
  EXPECT_DOUBLE_EQ(stats.horizon_days, 2.0);
  EXPECT_EQ(stats.sessions_per_user_day.count(), 2);
  EXPECT_DOUBLE_EQ(stats.sessions_per_user_day.mean(), (1.0 + 0.5) / 2.0);
  EXPECT_DOUBLE_EQ(stats.session_duration_s.mean(), 100.0 / 3.0);
}

TEST(TraceStatsTest, InterSessionGaps) {
  Population population;
  population.horizon_s = kDay;
  population.users.push_back(MakeUser({{0.0, 100.0}, {150.0, 10.0}, {1000.0, 10.0}}));
  const TraceStats stats = ComputeTraceStats(population);
  ASSERT_EQ(stats.inter_session_gap_s.count(), 2);
  EXPECT_DOUBLE_EQ(stats.inter_session_gap_s.min(), 50.0);
  EXPECT_DOUBLE_EQ(stats.inter_session_gap_s.max(), 840.0);
}

TEST(TraceStatsTest, OverlappingSessionsGiveZeroGap) {
  Population population;
  population.horizon_s = kDay;
  population.users.push_back(MakeUser({{0.0, 100.0}, {50.0, 10.0}}));
  const TraceStats stats = ComputeTraceStats(population);
  EXPECT_DOUBLE_EQ(stats.inter_session_gap_s.max(), 0.0);
}

TEST(TraceStatsTest, HourlyFractionSumsToOne) {
  PopulationConfig config;
  config.num_users = 50;
  config.horizon_s = 7.0 * kDay;
  const TraceStats stats = ComputeTraceStats(GeneratePopulation(config));
  double total = 0.0;
  for (double f : stats.hourly_fraction) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DailyCountsTest, BinsByDay) {
  UserTrace user = MakeUser({{100.0, 10.0}, {kDay - 1.0, 10.0}, {kDay + 5.0, 10.0}});
  const std::vector<int> counts = DailySessionCounts(user, 3.0 * kDay);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
}

TEST(AutocorrelationTest, ConstantSeriesReturnsZero) {
  // A user with exactly one session per day has zero variance.
  UserTrace user;
  for (int d = 0; d < 10; ++d) {
    user.sessions.push_back(Session{0, 0, d * kDay + 100.0, 10.0});
  }
  EXPECT_DOUBLE_EQ(DailyCountAutocorrelation(user, 10.0 * kDay, 1), 0.0);
}

TEST(AutocorrelationTest, ShortSeriesReturnsZero) {
  UserTrace user = MakeUser({{0.0, 10.0}});
  EXPECT_DOUBLE_EQ(DailyCountAutocorrelation(user, 2.0 * kDay, 1), 0.0);
}

TEST(AutocorrelationTest, AlternatingSeriesIsNegativeAtLagOne) {
  // 5 sessions on even days, 0 on odd days.
  UserTrace user;
  for (int d = 0; d < 20; d += 2) {
    for (int s = 0; s < 5; ++s) {
      user.sessions.push_back(Session{0, 0, d * kDay + 100.0 * (s + 1), 10.0});
    }
  }
  EXPECT_LT(DailyCountAutocorrelation(user, 20.0 * kDay, 1), -0.5);
  EXPECT_GT(DailyCountAutocorrelation(user, 20.0 * kDay, 2), 0.5);
}

TEST(AutocorrelationTest, GeneratedUsersArePositivelyAutocorrelatedAtWeekLag) {
  // Week-over-week regularity is what makes prediction viable; verify the
  // generator produces users whose *hourly* behaviour repeats. Daily counts
  // with low noise should show near-zero-or-positive lag-1 correlation on
  // average (they share the same base rate).
  PopulationConfig config;
  config.num_users = 60;
  config.horizon_s = 28.0 * kDay;
  config.day_noise_sigma = 0.2;
  const Population population = GeneratePopulation(config);
  double mean_ac = 0.0;
  for (const UserTrace& user : population.users) {
    mean_ac += DailyCountAutocorrelation(user, config.horizon_s, 1);
  }
  mean_ac /= static_cast<double>(population.users.size());
  // Independent day draws give ~0; systematic negative would be a bug.
  EXPECT_GT(mean_ac, -0.15);
}

}  // namespace
}  // namespace pad
