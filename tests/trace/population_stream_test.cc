// PopulationStream's determinism contract: lazily generated users are
// bit-identical to the same users inside a full GeneratePopulation, for any
// skip/block pattern. The shard engine's byte-identity guarantee rests
// entirely on this property.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/trace/generator.h"

namespace pad {
namespace {

// Bitwise comparison: doubles compared by value equality on purpose — the
// contract is "same draws, same results", not "close".
void ExpectSameTrace(const UserTrace& expected, const UserTrace& actual) {
  ASSERT_EQ(expected.user_id, actual.user_id);
  EXPECT_EQ(expected.segment, actual.segment);
  ASSERT_EQ(expected.sessions.size(), actual.sessions.size());
  for (size_t s = 0; s < expected.sessions.size(); ++s) {
    const Session& want = expected.sessions[s];
    const Session& got = actual.sessions[s];
    EXPECT_EQ(want.user_id, got.user_id);
    EXPECT_EQ(want.app_id, got.app_id);
    EXPECT_EQ(want.start_time, got.start_time);
    EXPECT_EQ(want.duration_s, got.duration_s);
  }
}

TEST(PopulationStreamTest, FullStreamMatchesGeneratePopulation) {
  PopulationConfig config;
  config.num_users = 40;
  config.horizon_s = 7.0 * kDay;
  const Population expected = GeneratePopulation(config);

  PopulationStream stream(config);
  const Population streamed = stream.NextBlock(config.num_users);
  EXPECT_EQ(expected.horizon_s, streamed.horizon_s);
  ASSERT_EQ(expected.users.size(), streamed.users.size());
  for (size_t u = 0; u < expected.users.size(); ++u) {
    ExpectSameTrace(expected.users[u], streamed.users[u]);
  }
}

TEST(PopulationStreamTest, ChunkedBlocksMatchOneBlock) {
  PopulationConfig config;
  config.num_users = 37;  // Deliberately not divisible by the chunk size.
  config.horizon_s = 5.0 * kDay;
  config.seed = 99;
  const Population expected = GeneratePopulation(config);

  PopulationStream stream(config);
  int64_t produced = 0;
  for (const int64_t chunk : {5ll, 11ll, 1ll, 13ll, 7ll}) {
    const Population block = stream.NextBlock(chunk);
    ASSERT_EQ(static_cast<size_t>(chunk), block.users.size());
    for (int64_t i = 0; i < chunk; ++i) {
      ExpectSameTrace(expected.users[static_cast<size_t>(produced + i)],
                      block.users[static_cast<size_t>(i)]);
    }
    produced += chunk;
    EXPECT_EQ(produced, stream.cursor());
  }
  EXPECT_EQ(config.num_users, produced);
}

// The property the shard engine leans on: skip straight to any user and get
// exactly the trace the monolithic generator would have produced, across 100
// random (config, user) draws.
TEST(PopulationStreamTest, RandomSkipsAreBitIdentical) {
  Rng meta(0x5eedf00dull);
  for (int round = 0; round < 20; ++round) {
    PopulationConfig config;
    config.num_users = static_cast<int>(meta.UniformInt(10, 60));
    config.horizon_s = static_cast<double>(meta.UniformInt(3, 10)) * kDay;
    config.num_segments = static_cast<int>(meta.UniformInt(1, 5));
    config.day_noise_sigma = 0.2 + 0.3 * meta.NextDouble();
    config.seed = meta.NextU64();
    const Population expected = GeneratePopulation(config);

    for (int pick = 0; pick < 5; ++pick) {
      const int64_t user = meta.UniformInt(0, config.num_users - 1);
      PopulationStream stream(config);
      stream.SkipUsers(user);
      EXPECT_EQ(user, stream.cursor());
      const Population block = stream.NextBlock(1);
      ASSERT_EQ(1u, block.users.size());
      ExpectSameTrace(expected.users[static_cast<size_t>(user)], block.users[0]);
    }
  }
}

TEST(PopulationStreamTest, SkipThenStreamRemainderMatches) {
  PopulationConfig config;
  config.num_users = 60;
  config.horizon_s = 6.0 * kDay;
  config.seed = 7;
  const Population expected = GeneratePopulation(config);

  PopulationStream stream(config);
  stream.SkipUsers(23);
  const Population tail = stream.NextBlock(config.num_users - 23);
  ASSERT_EQ(static_cast<size_t>(config.num_users - 23), tail.users.size());
  for (size_t i = 0; i < tail.users.size(); ++i) {
    ExpectSameTrace(expected.users[23 + i], tail.users[i]);
  }
}

// Heavy-cluster skew is a pure function of the user id — it consumes no RNG
// draws — so every stream property above must keep holding at every skew
// setting, and the skewed stream must stay bit-identical to the skewed
// monolithic generator under arbitrary skip patterns.
TEST(PopulationStreamTest, SkewedStreamsRemainBitIdentical) {
  struct SkewCase {
    double fraction;
    double multiplier;
  };
  const SkewCase cases[] = {{0.0, 1.0}, {0.1, 10.0}, {0.25, 100.0}, {1.0, 3.0}};
  Rng meta(0xbadc0ffeeull);
  for (const SkewCase& skew : cases) {
    PopulationConfig config;
    config.num_users = 48;
    config.horizon_s = 5.0 * kDay;
    config.seed = 4242;
    config.skew_heavy_fraction = skew.fraction;
    config.skew_rate_multiplier = skew.multiplier;
    SCOPED_TRACE("fraction=" + std::to_string(skew.fraction) +
                 " multiplier=" + std::to_string(skew.multiplier));
    const Population expected = GeneratePopulation(config);

    // Full stream.
    PopulationStream stream(config);
    const Population streamed = stream.NextBlock(config.num_users);
    ASSERT_EQ(expected.users.size(), streamed.users.size());
    for (size_t u = 0; u < expected.users.size(); ++u) {
      ExpectSameTrace(expected.users[u], streamed.users[u]);
    }

    // Random skips, including across the heavy/light boundary.
    for (int pick = 0; pick < 5; ++pick) {
      const int64_t user = meta.UniformInt(0, config.num_users - 1);
      PopulationStream skipper(config);
      skipper.SkipUsers(user);
      const Population block = skipper.NextBlock(1);
      ASSERT_EQ(1u, block.users.size());
      ExpectSameTrace(expected.users[static_cast<size_t>(user)], block.users[0]);
    }
  }
}

// SeekUsers repositions in either direction (the work-stealing engine seeks
// backward when a stolen market precedes the stream's cursor) and must land
// bit-identical wherever it goes.
TEST(PopulationStreamTest, SeekUsersEitherDirectionIsBitIdentical) {
  PopulationConfig config;
  config.num_users = 50;
  config.horizon_s = 6.0 * kDay;
  config.seed = 31337;
  config.skew_heavy_fraction = 0.2;
  config.skew_rate_multiplier = 25.0;
  const Population expected = GeneratePopulation(config);

  PopulationStream stream(config);
  // A mix of forward jumps, backward jumps, and no-op seeks.
  for (const int64_t target : {10ll, 40ll, 5ll, 5ll, 49ll, 0ll, 25ll}) {
    stream.SeekUsers(target);
    EXPECT_EQ(target, stream.cursor());
    const Population block = stream.NextBlock(1);
    ASSERT_EQ(1u, block.users.size());
    ExpectSameTrace(expected.users[static_cast<size_t>(target)], block.users[0]);
  }
}

// The skew knob itself: heavy users carry exactly multiplier times the
// session rate they would have had unskewed (exact double equality — the
// multiply is the only change), light users are untouched, and the heavy
// prefix is exactly SkewHeavyUsers long.
TEST(PopulationStreamTest, SkewMultipliesHeavyPrefixRatesExactly) {
  PopulationConfig plain;
  plain.num_users = 40;
  plain.seed = 77;
  PopulationConfig skewed = plain;
  skewed.skew_heavy_fraction = 0.25;
  skewed.skew_rate_multiplier = 100.0;
  ASSERT_EQ(10, SkewHeavyUsers(skewed));
  ASSERT_EQ(0, SkewHeavyUsers(plain));

  const std::vector<UserParams> base = SampleUserParams(plain);
  const std::vector<UserParams> heavy = SampleUserParams(skewed);
  ASSERT_EQ(base.size(), heavy.size());
  for (size_t u = 0; u < base.size(); ++u) {
    EXPECT_EQ(base[u].segment, heavy[u].segment) << "user " << u;
    if (static_cast<int64_t>(u) < SkewHeavyUsers(skewed)) {
      EXPECT_EQ(base[u].sessions_per_day * 100.0, heavy[u].sessions_per_day) << "user " << u;
    } else {
      EXPECT_EQ(base[u].sessions_per_day, heavy[u].sessions_per_day) << "user " << u;
    }
  }
}

TEST(PopulationStreamTest, SkewHeavyUsersRoundsAndClamps) {
  PopulationConfig config;
  config.num_users = 10;
  config.skew_rate_multiplier = 2.0;
  config.skew_heavy_fraction = 0.0;
  EXPECT_EQ(0, SkewHeavyUsers(config));
  config.skew_heavy_fraction = 0.04;  // 0.4 users rounds to 0.
  EXPECT_EQ(0, SkewHeavyUsers(config));
  config.skew_heavy_fraction = 0.06;  // 0.6 users rounds to 1.
  EXPECT_EQ(1, SkewHeavyUsers(config));
  config.skew_heavy_fraction = 1.0;
  EXPECT_EQ(10, SkewHeavyUsers(config));
}

TEST(PopulationStreamTest, ParamsMatchSampleUserParams) {
  PopulationConfig config;
  config.num_users = 25;
  config.seed = 1234;
  const std::vector<UserParams> expected = SampleUserParams(config);
  // Streaming the whole population draws the same parameter stream, so
  // mean rates must line up user by user through the generated traces'
  // metadata — checked indirectly via segment ids, which come from params.
  PopulationStream stream(config);
  const Population block = stream.NextBlock(config.num_users);
  ASSERT_EQ(expected.size(), block.users.size());
  for (size_t u = 0; u < expected.size(); ++u) {
    EXPECT_EQ(expected[u].segment, block.users[u].segment);
    EXPECT_EQ(expected[u].user_id, block.users[u].user_id);
  }
}

}  // namespace
}  // namespace pad
