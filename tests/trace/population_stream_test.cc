// PopulationStream's determinism contract: lazily generated users are
// bit-identical to the same users inside a full GeneratePopulation, for any
// skip/block pattern. The shard engine's byte-identity guarantee rests
// entirely on this property.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/trace/generator.h"

namespace pad {
namespace {

// Bitwise comparison: doubles compared by value equality on purpose — the
// contract is "same draws, same results", not "close".
void ExpectSameTrace(const UserTrace& expected, const UserTrace& actual) {
  ASSERT_EQ(expected.user_id, actual.user_id);
  EXPECT_EQ(expected.segment, actual.segment);
  ASSERT_EQ(expected.sessions.size(), actual.sessions.size());
  for (size_t s = 0; s < expected.sessions.size(); ++s) {
    const Session& want = expected.sessions[s];
    const Session& got = actual.sessions[s];
    EXPECT_EQ(want.user_id, got.user_id);
    EXPECT_EQ(want.app_id, got.app_id);
    EXPECT_EQ(want.start_time, got.start_time);
    EXPECT_EQ(want.duration_s, got.duration_s);
  }
}

TEST(PopulationStreamTest, FullStreamMatchesGeneratePopulation) {
  PopulationConfig config;
  config.num_users = 40;
  config.horizon_s = 7.0 * kDay;
  const Population expected = GeneratePopulation(config);

  PopulationStream stream(config);
  const Population streamed = stream.NextBlock(config.num_users);
  EXPECT_EQ(expected.horizon_s, streamed.horizon_s);
  ASSERT_EQ(expected.users.size(), streamed.users.size());
  for (size_t u = 0; u < expected.users.size(); ++u) {
    ExpectSameTrace(expected.users[u], streamed.users[u]);
  }
}

TEST(PopulationStreamTest, ChunkedBlocksMatchOneBlock) {
  PopulationConfig config;
  config.num_users = 37;  // Deliberately not divisible by the chunk size.
  config.horizon_s = 5.0 * kDay;
  config.seed = 99;
  const Population expected = GeneratePopulation(config);

  PopulationStream stream(config);
  int64_t produced = 0;
  for (const int64_t chunk : {5ll, 11ll, 1ll, 13ll, 7ll}) {
    const Population block = stream.NextBlock(chunk);
    ASSERT_EQ(static_cast<size_t>(chunk), block.users.size());
    for (int64_t i = 0; i < chunk; ++i) {
      ExpectSameTrace(expected.users[static_cast<size_t>(produced + i)],
                      block.users[static_cast<size_t>(i)]);
    }
    produced += chunk;
    EXPECT_EQ(produced, stream.cursor());
  }
  EXPECT_EQ(config.num_users, produced);
}

// The property the shard engine leans on: skip straight to any user and get
// exactly the trace the monolithic generator would have produced, across 100
// random (config, user) draws.
TEST(PopulationStreamTest, RandomSkipsAreBitIdentical) {
  Rng meta(0x5eedf00dull);
  for (int round = 0; round < 20; ++round) {
    PopulationConfig config;
    config.num_users = static_cast<int>(meta.UniformInt(10, 60));
    config.horizon_s = static_cast<double>(meta.UniformInt(3, 10)) * kDay;
    config.num_segments = static_cast<int>(meta.UniformInt(1, 5));
    config.day_noise_sigma = 0.2 + 0.3 * meta.NextDouble();
    config.seed = meta.NextU64();
    const Population expected = GeneratePopulation(config);

    for (int pick = 0; pick < 5; ++pick) {
      const int64_t user = meta.UniformInt(0, config.num_users - 1);
      PopulationStream stream(config);
      stream.SkipUsers(user);
      EXPECT_EQ(user, stream.cursor());
      const Population block = stream.NextBlock(1);
      ASSERT_EQ(1u, block.users.size());
      ExpectSameTrace(expected.users[static_cast<size_t>(user)], block.users[0]);
    }
  }
}

TEST(PopulationStreamTest, SkipThenStreamRemainderMatches) {
  PopulationConfig config;
  config.num_users = 60;
  config.horizon_s = 6.0 * kDay;
  config.seed = 7;
  const Population expected = GeneratePopulation(config);

  PopulationStream stream(config);
  stream.SkipUsers(23);
  const Population tail = stream.NextBlock(config.num_users - 23);
  ASSERT_EQ(static_cast<size_t>(config.num_users - 23), tail.users.size());
  for (size_t i = 0; i < tail.users.size(); ++i) {
    ExpectSameTrace(expected.users[23 + i], tail.users[i]);
  }
}

TEST(PopulationStreamTest, ParamsMatchSampleUserParams) {
  PopulationConfig config;
  config.num_users = 25;
  config.seed = 1234;
  const std::vector<UserParams> expected = SampleUserParams(config);
  // Streaming the whole population draws the same parameter stream, so
  // mean rates must line up user by user through the generated traces'
  // metadata — checked indirectly via segment ids, which come from params.
  PopulationStream stream(config);
  const Population block = stream.NextBlock(config.num_users);
  ASSERT_EQ(expected.size(), block.users.size());
  for (size_t u = 0; u < expected.size(); ++u) {
    EXPECT_EQ(expected[u].segment, block.users[u].segment);
    EXPECT_EQ(expected[u].user_id, block.users[u].user_id);
  }
}

}  // namespace
}  // namespace pad
