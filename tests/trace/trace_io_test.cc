#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/units.h"
#include "src/trace/generator.h"

namespace pad {
namespace {

TEST(TraceIoTest, RoundTripPreservesEverything) {
  PopulationConfig config;
  config.num_users = 20;
  config.horizon_s = 3.0 * kDay;
  config.num_segments = 4;
  const Population original = GeneratePopulation(config);

  std::ostringstream out;
  WriteTrace(original, out);
  const Population loaded = ParseTrace(out.str());

  EXPECT_DOUBLE_EQ(loaded.horizon_s, original.horizon_s);
  ASSERT_EQ(loaded.users.size(), original.users.size());
  for (size_t u = 0; u < original.users.size(); ++u) {
    const UserTrace& a = original.users[u];
    const UserTrace& b = loaded.users[u];
    EXPECT_EQ(a.user_id, b.user_id);
    EXPECT_EQ(a.segment, b.segment);
    ASSERT_EQ(a.sessions.size(), b.sessions.size());
    for (size_t s = 0; s < a.sessions.size(); ++s) {
      EXPECT_EQ(a.sessions[s].app_id, b.sessions[s].app_id);
      EXPECT_DOUBLE_EQ(a.sessions[s].start_time, b.sessions[s].start_time);
      EXPECT_DOUBLE_EQ(a.sessions[s].duration_s, b.sessions[s].duration_s);
    }
  }
}

TEST(TraceIoTest, ParseWithoutHorizonDerivesFromSessions) {
  const std::string text =
      "user_id,app_id,start_time,duration_s\n"
      "0,1,1000,60\n"
      "0,2,90000,120\n";
  const Population population = ParseTrace(text);
  // Max end = 90120 s -> rounded up to 2 days.
  EXPECT_DOUBLE_EQ(population.horizon_s, 2.0 * kDay);
}

TEST(TraceIoTest, LegacyTraceWithoutSegmentColumnLoads) {
  const std::string text =
      "user_id,app_id,start_time,duration_s\n"
      "3,1,1000,60\n";
  const Population population = ParseTrace(text);
  ASSERT_EQ(population.users.size(), 1u);
  EXPECT_EQ(population.users[0].segment, 0);
}

TEST(TraceIoTest, ParseSortsSessionsWithinUser) {
  const std::string text =
      "user_id,app_id,start_time,duration_s\n"
      "0,1,500,10\n"
      "0,1,100,10\n"
      "0,1,300,10\n";
  const Population population = ParseTrace(text);
  ASSERT_EQ(population.users.size(), 1u);
  const auto& sessions = population.users[0].sessions;
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_DOUBLE_EQ(sessions[0].start_time, 100.0);
  EXPECT_DOUBLE_EQ(sessions[2].start_time, 500.0);
}

TEST(TraceIoTest, ParseGroupsUsers) {
  const std::string text =
      "user_id,app_id,start_time,duration_s\n"
      "3,0,10,5\n"
      "1,0,20,5\n"
      "3,0,30,5\n";
  const Population population = ParseTrace(text);
  ASSERT_EQ(population.users.size(), 2u);
  // Users come out ordered by id.
  EXPECT_EQ(population.users[0].user_id, 1);
  EXPECT_EQ(population.users[1].user_id, 3);
  EXPECT_EQ(population.users[1].sessions.size(), 2u);
}

TEST(TraceIoTest, FileRoundTrip) {
  PopulationConfig config;
  config.num_users = 5;
  config.horizon_s = 1.0 * kDay;
  const Population original = GeneratePopulation(config);
  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  WriteTraceFile(original, path);
  const Population loaded = ReadTraceFile(path);
  EXPECT_EQ(loaded.TotalSessions(), original.TotalSessions());
}

TEST(TraceIoDeathTest, MissingFileAborts) {
  EXPECT_DEATH(ReadTraceFile("/nonexistent/path/trace.csv"), "cannot open");
}

}  // namespace
}  // namespace pad
