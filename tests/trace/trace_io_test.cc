#include "src/trace/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/units.h"
#include "src/trace/generator.h"

namespace pad {
namespace {

TEST(TraceIoTest, RoundTripPreservesEverything) {
  PopulationConfig config;
  config.num_users = 20;
  config.horizon_s = 3.0 * kDay;
  config.num_segments = 4;
  const Population original = GeneratePopulation(config);

  std::ostringstream out;
  WriteTrace(original, out);
  const Population loaded = ParseTrace(out.str());

  EXPECT_DOUBLE_EQ(loaded.horizon_s, original.horizon_s);
  ASSERT_EQ(loaded.users.size(), original.users.size());
  for (size_t u = 0; u < original.users.size(); ++u) {
    const UserTrace& a = original.users[u];
    const UserTrace& b = loaded.users[u];
    EXPECT_EQ(a.user_id, b.user_id);
    EXPECT_EQ(a.segment, b.segment);
    ASSERT_EQ(a.sessions.size(), b.sessions.size());
    for (size_t s = 0; s < a.sessions.size(); ++s) {
      EXPECT_EQ(a.sessions[s].app_id, b.sessions[s].app_id);
      EXPECT_DOUBLE_EQ(a.sessions[s].start_time, b.sessions[s].start_time);
      EXPECT_DOUBLE_EQ(a.sessions[s].duration_s, b.sessions[s].duration_s);
    }
  }
}

TEST(TraceIoTest, ParseWithoutHorizonDerivesFromSessions) {
  const std::string text =
      "user_id,app_id,start_time,duration_s\n"
      "0,1,1000,60\n"
      "0,2,90000,120\n";
  const Population population = ParseTrace(text);
  // Max end = 90120 s -> rounded up to 2 days.
  EXPECT_DOUBLE_EQ(population.horizon_s, 2.0 * kDay);
}

TEST(TraceIoTest, LegacyTraceWithoutSegmentColumnLoads) {
  const std::string text =
      "user_id,app_id,start_time,duration_s\n"
      "3,1,1000,60\n";
  const Population population = ParseTrace(text);
  ASSERT_EQ(population.users.size(), 1u);
  EXPECT_EQ(population.users[0].segment, 0);
}

TEST(TraceIoTest, ParseSortsSessionsWithinUser) {
  const std::string text =
      "user_id,app_id,start_time,duration_s\n"
      "0,1,500,10\n"
      "0,1,100,10\n"
      "0,1,300,10\n";
  const Population population = ParseTrace(text);
  ASSERT_EQ(population.users.size(), 1u);
  const auto& sessions = population.users[0].sessions;
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_DOUBLE_EQ(sessions[0].start_time, 100.0);
  EXPECT_DOUBLE_EQ(sessions[2].start_time, 500.0);
}

TEST(TraceIoTest, ParseGroupsUsers) {
  const std::string text =
      "user_id,app_id,start_time,duration_s\n"
      "3,0,10,5\n"
      "1,0,20,5\n"
      "3,0,30,5\n";
  const Population population = ParseTrace(text);
  ASSERT_EQ(population.users.size(), 2u);
  // Users come out ordered by id.
  EXPECT_EQ(population.users[0].user_id, 1);
  EXPECT_EQ(population.users[1].user_id, 3);
  EXPECT_EQ(population.users[1].sessions.size(), 2u);
}

TEST(TraceIoTest, FileRoundTrip) {
  PopulationConfig config;
  config.num_users = 5;
  config.horizon_s = 1.0 * kDay;
  const Population original = GeneratePopulation(config);
  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  WriteTraceFile(original, path);
  const Population loaded = ReadTraceFile(path);
  EXPECT_EQ(loaded.TotalSessions(), original.TotalSessions());
}

TEST(TraceIoTest, WriteReadWriteYieldsIdenticalBytes) {
  // Byte-level round trip: serializing a parsed trace reproduces the exact
  // original file, so traces can be archived, diffed, and digested.
  PopulationConfig config;
  config.num_users = 15;
  config.horizon_s = 2.0 * kDay;
  config.num_segments = 3;
  const Population original = GeneratePopulation(config);

  std::ostringstream first;
  WriteTrace(original, first);
  const Population loaded = ParseTrace(first.str());
  std::ostringstream second;
  WriteTrace(loaded, second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(TraceIoTest, TryParseAcceptsWellFormedTrace) {
  Population population;
  std::string error;
  EXPECT_TRUE(TryParseTrace(
      "user_id,app_id,start_time,duration_s\n"
      "0,1,1000,60\n",
      &population, &error))
      << error;
  EXPECT_EQ(population.users.size(), 1u);
}

TEST(TraceIoTest, TruncatedLineIsACleanError) {
  // The last row lost its duration field mid-write.
  Population population;
  std::string error;
  EXPECT_FALSE(TryParseTrace(
      "user_id,app_id,start_time,duration_s\n"
      "0,1,1000,60\n"
      "0,2,2000\n",
      &population, &error));
  EXPECT_NE(error.find("ragged"), std::string::npos) << error;
}

TEST(TraceIoTest, BadFieldCountIsACleanError) {
  Population population;
  std::string error;
  EXPECT_FALSE(TryParseTrace(
      "user_id,app_id,start_time,duration_s\n"
      "0,1,1000,60,999\n",
      &population, &error));
  EXPECT_NE(error.find("ragged"), std::string::npos) << error;
}

TEST(TraceIoTest, NonNumericFieldIsACleanError) {
  Population population;
  std::string error;
  EXPECT_FALSE(TryParseTrace(
      "user_id,app_id,start_time,duration_s\n"
      "0,banana,1000,60\n",
      &population, &error));
  EXPECT_NE(error.find("app_id"), std::string::npos) << error;
}

TEST(TraceIoTest, NegativeDurationIsACleanError) {
  Population population;
  std::string error;
  EXPECT_FALSE(TryParseTrace(
      "user_id,app_id,start_time,duration_s\n"
      "0,1,1000,-5\n",
      &population, &error));
  EXPECT_NE(error.find("duration"), std::string::npos) << error;
}

TEST(TraceIoTest, MissingRequiredColumnIsACleanError) {
  Population population;
  std::string error;
  EXPECT_FALSE(TryParseTrace(
      "user_id,app_id,start_time\n"
      "0,1,1000\n",
      &population, &error));
  EXPECT_NE(error.find("duration_s"), std::string::npos) << error;
}

TEST(TraceIoTest, MalformedHorizonCommentIsACleanError) {
  Population population;
  std::string error;
  EXPECT_FALSE(TryParseTrace(
      "# horizon_s=not_a_number\n"
      "user_id,app_id,start_time,duration_s\n"
      "0,1,1000,60\n",
      &population, &error));
  EXPECT_NE(error.find("horizon"), std::string::npos) << error;
}

TEST(TraceIoTest, FailedParseLeavesPopulationUntouched) {
  Population population;
  population.horizon_s = 123.0;
  std::string error;
  EXPECT_FALSE(TryParseTrace("user_id,app_id,start_time,duration_s\n0,1\n", &population,
                             &error));
  EXPECT_DOUBLE_EQ(population.horizon_s, 123.0);
}

TEST(TraceIoDeathTest, MissingFileAborts) {
  EXPECT_DEATH(ReadTraceFile("/nonexistent/path/trace.csv"), "cannot open");
}

TEST(TraceIoDeathTest, ParseTraceAbortsOnMalformedInput) {
  // The aborting wrapper keeps the old contract for internal callers.
  EXPECT_DEATH(ParseTrace("user_id,app_id,start_time,duration_s\n0,1\n"), "ragged");
}

}  // namespace
}  // namespace pad
