#include "src/trace/user_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pad {
namespace {

TEST(DiurnalProfileTest, WeightsNormalizedToMeanOne) {
  for (const DiurnalProfile& profile : {DiurnalProfile::Typical(), DiurnalProfile::Flat()}) {
    double sum = 0.0;
    for (int h = 0; h < 24; ++h) {
      sum += profile.Weight(static_cast<double>(h) + 0.5);
    }
    EXPECT_NEAR(sum / 24.0, 1.0, 1e-9);
  }
}

TEST(DiurnalProfileTest, FlatIsConstant) {
  const DiurnalProfile flat = DiurnalProfile::Flat();
  for (double h = 0.0; h < 24.0; h += 0.37) {
    EXPECT_NEAR(flat.Weight(h), 1.0, 1e-9);
  }
}

TEST(DiurnalProfileTest, TypicalHasEveningPeakAndNightTrough) {
  const DiurnalProfile profile = DiurnalProfile::Typical();
  EXPECT_GT(profile.Weight(20.5), 3.0 * profile.Weight(3.5));
  EXPECT_GT(profile.Weight(20.5), profile.Weight(10.5));
}

TEST(DiurnalProfileTest, PhaseShiftMovesPeak) {
  const DiurnalProfile profile = DiurnalProfile::Typical();
  // Shifting by +3 h: the weight at hour 23.5 with shift 3 equals hour 20.5 unshifted.
  EXPECT_NEAR(profile.Weight(23.5, 3.0), profile.Weight(20.5), 1e-9);
}

TEST(DiurnalProfileTest, WeightWrapsAroundMidnight) {
  const DiurnalProfile profile = DiurnalProfile::Typical();
  EXPECT_NEAR(profile.Weight(-1.0), profile.Weight(23.0), 1e-9);
  EXPECT_NEAR(profile.Weight(25.0), profile.Weight(1.0), 1e-9);
}

TEST(DiurnalProfileTest, InterpolationIsContinuous) {
  const DiurnalProfile profile = DiurnalProfile::Typical();
  for (double h = 0.05; h < 24.0; h += 0.1) {
    const double a = profile.Weight(h);
    const double b = profile.Weight(h + 0.01);
    EXPECT_LT(std::fabs(a - b), 0.1) << "discontinuity near hour " << h;
  }
}

TEST(DiurnalProfileTest, SampleHourInRangeAndFollowsProfile) {
  const DiurnalProfile profile = DiurnalProfile::Typical();
  Rng rng(5);
  int evening = 0;
  int night = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double h = profile.SampleHour(rng);
    ASSERT_GE(h, 0.0);
    ASSERT_LT(h, 24.0);
    if (h >= 18.0 && h < 22.0) {
      ++evening;
    }
    if (h >= 2.0 && h < 6.0) {
      ++night;
    }
  }
  EXPECT_GT(evening, 5 * night);
}

TEST(DiurnalProfileTest, SampleHourHonorsPhaseShift) {
  const DiurnalProfile profile = DiurnalProfile::Typical();
  Rng rng(6);
  double sum_shifted = 0.0;
  const int n = 20000;
  int late_night = 0;
  for (int i = 0; i < n; ++i) {
    const double h = profile.SampleHour(rng, 6.0);
    sum_shifted += h;
    if (h >= 0.0 && h < 4.0) {
      ++late_night;  // 18-22 peak shifted by 6 lands at 0-4.
    }
  }
  EXPECT_GT(static_cast<double>(late_night) / n, 0.2);
  (void)sum_shifted;
}

TEST(DiurnalProfileDeathTest, AllZeroWeightsAbort) {
  std::array<double, 24> zeros{};
  EXPECT_DEATH(DiurnalProfile profile(zeros), "positive");
}

TEST(ArchetypesTest, DefaultsAreWellFormed) {
  const auto archetypes = DefaultArchetypes();
  ASSERT_EQ(archetypes.size(), 3u);
  double weight = 0.0;
  for (const UserArchetype& archetype : archetypes) {
    EXPECT_GT(archetype.weight, 0.0);
    EXPECT_GT(archetype.sessions_per_day, 0.0);
    EXPECT_GT(archetype.session_duration_sigma, 0.0);
    weight += archetype.weight;
  }
  EXPECT_NEAR(weight, 1.0, 1e-9);
  // Heavy users are an order of magnitude more active than light ones.
  EXPECT_GT(archetypes.back().sessions_per_day / archetypes.front().sessions_per_day, 5.0);
}

}  // namespace
}  // namespace pad
