#include "src/apps/workload.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/trace/generator.h"

namespace pad {
namespace {

AppCatalog SingleAppCatalog(double refresh_s, double launch_bytes, double content_period_s,
                            double content_bytes) {
  AppProfile app;
  app.app_id = 0;
  app.name = "test_app";
  app.genre = "test";
  app.has_ads = true;
  app.ad_refresh_s = refresh_s;
  app.ad_bytes = 1000.0;
  app.launch_bytes = launch_bytes;
  app.content_period_s = content_period_s;
  app.content_bytes = content_bytes;
  app.local_power_w = 1.0;
  return AppCatalog({app});
}

UserTrace OneSession(double start, double duration) {
  UserTrace user;
  user.user_id = 7;
  user.sessions.push_back(Session{7, 0, start, duration});
  return user;
}

TEST(WorkloadTest, SlotsMatchAppProfileCount) {
  const AppCatalog catalog = SingleAppCatalog(30.0, 0.0, 0.0, 0.0);
  const UserTrace user = OneSession(100.0, 95.0);
  const auto slots = SlotsForUser(catalog, user);
  ASSERT_EQ(slots.size(), 4u);  // t = 100, 130, 160, 190.
  EXPECT_DOUBLE_EQ(slots[0].time, 100.0);
  EXPECT_DOUBLE_EQ(slots[3].time, 190.0);
  EXPECT_EQ(slots[0].user_id, 7);
  EXPECT_EQ(slots[0].app_id, 0);
}

TEST(WorkloadTest, OnDemandAdsEmitOneFetchPerSlot) {
  const AppCatalog catalog = SingleAppCatalog(30.0, 0.0, 0.0, 0.0);
  const UserTrace user = OneSession(0.0, 60.0);
  WorkloadOptions options;
  options.on_demand_ads = true;
  options.app_content = false;
  const UserWorkload workload = ExpandUser(catalog, user, options);
  EXPECT_EQ(workload.slots.size(), 3u);
  ASSERT_EQ(workload.transfers.size(), 3u);
  for (const Transfer& transfer : workload.transfers) {
    EXPECT_EQ(transfer.category, TrafficCategory::kAdFetch);
    EXPECT_EQ(transfer.direction, Direction::kDownlink);
    EXPECT_DOUBLE_EQ(transfer.bytes, 1000.0);
  }
}

TEST(WorkloadTest, NoOnDemandAdsStillEmitsSlots) {
  const AppCatalog catalog = SingleAppCatalog(30.0, 0.0, 0.0, 0.0);
  const UserTrace user = OneSession(0.0, 60.0);
  WorkloadOptions options;
  options.on_demand_ads = false;
  options.app_content = false;
  const UserWorkload workload = ExpandUser(catalog, user, options);
  EXPECT_EQ(workload.slots.size(), 3u);
  EXPECT_TRUE(workload.transfers.empty());
}

TEST(WorkloadTest, LaunchAndPeriodicContent) {
  const AppCatalog catalog = SingleAppCatalog(1e9, 5000.0, 60.0, 2000.0);
  const UserTrace user = OneSession(0.0, 150.0);
  WorkloadOptions options;
  options.on_demand_ads = false;
  options.app_content = true;
  const UserWorkload workload = ExpandUser(catalog, user, options);
  // Launch at 0, periodic at 60 and 120.
  ASSERT_EQ(workload.transfers.size(), 3u);
  EXPECT_DOUBLE_EQ(workload.transfers[0].request_time, 0.0);
  EXPECT_DOUBLE_EQ(workload.transfers[0].bytes, 5000.0);
  EXPECT_DOUBLE_EQ(workload.transfers[1].request_time, 60.0);
  EXPECT_DOUBLE_EQ(workload.transfers[2].request_time, 120.0);
  for (const Transfer& transfer : workload.transfers) {
    EXPECT_EQ(transfer.category, TrafficCategory::kAppContent);
  }
}

TEST(WorkloadTest, ForegroundTimeAndLocalEnergy) {
  const AppCatalog catalog = SingleAppCatalog(30.0, 0.0, 0.0, 0.0);
  UserTrace user = OneSession(0.0, 100.0);
  user.sessions.push_back(Session{7, 0, 500.0, 50.0});
  WorkloadOptions options;
  const UserWorkload workload = ExpandUser(catalog, user, options);
  EXPECT_DOUBLE_EQ(workload.foreground_s, 150.0);
  EXPECT_DOUBLE_EQ(workload.local_energy_j, 150.0);  // 1 W local power.
}

TEST(WorkloadTest, TransfersAndSlotsSorted) {
  PopulationConfig config;
  config.num_users = 10;
  config.horizon_s = 2.0 * kDay;
  config.num_apps = 15;
  const Population population = GeneratePopulation(config);
  const AppCatalog catalog = AppCatalog::TopFifteen();
  WorkloadOptions options;
  for (const UserWorkload& workload : ExpandPopulation(catalog, population, options)) {
    for (size_t i = 1; i < workload.transfers.size(); ++i) {
      EXPECT_LE(workload.transfers[i - 1].request_time, workload.transfers[i].request_time);
    }
    for (size_t i = 1; i < workload.slots.size(); ++i) {
      EXPECT_LE(workload.slots[i - 1].time, workload.slots[i].time);
    }
  }
}

TEST(WorkloadTest, SlotCountConsistentWithProfileFormula) {
  PopulationConfig config;
  config.num_users = 20;
  config.horizon_s = 3.0 * kDay;
  config.num_apps = 15;
  const Population population = GeneratePopulation(config);
  const AppCatalog catalog = AppCatalog::TopFifteen();
  for (const UserTrace& user : population.users) {
    int64_t expected = 0;
    for (const Session& session : user.sessions) {
      expected += catalog.Get(session.app_id).SlotsInSession(session.duration_s);
    }
    EXPECT_EQ(static_cast<int64_t>(SlotsForUser(catalog, user).size()), expected);
  }
}

TEST(WorkloadTest, PopulationExpansionPreservesUserIds) {
  PopulationConfig config;
  config.num_users = 5;
  config.horizon_s = kDay;
  config.num_apps = 15;
  const Population population = GeneratePopulation(config);
  const AppCatalog catalog = AppCatalog::TopFifteen();
  WorkloadOptions options;
  const auto workloads = ExpandPopulation(catalog, population, options);
  ASSERT_EQ(workloads.size(), 5u);
  for (size_t i = 0; i < workloads.size(); ++i) {
    EXPECT_EQ(workloads[i].user_id, population.users[i].user_id);
  }
}

}  // namespace
}  // namespace pad
