#include "src/apps/app_profile.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace pad {
namespace {

TEST(AppProfileTest, SlotsInSessionCountsLaunchPlusRefreshes) {
  AppProfile app;
  app.has_ads = true;
  app.ad_refresh_s = 30.0;
  EXPECT_EQ(app.SlotsInSession(0.0), 1);     // Launch slot only.
  EXPECT_EQ(app.SlotsInSession(29.9), 1);
  EXPECT_EQ(app.SlotsInSession(30.0), 2);
  EXPECT_EQ(app.SlotsInSession(89.0), 3);
  EXPECT_EQ(app.SlotsInSession(300.0), 11);
}

TEST(AppProfileTest, NoAdsMeansNoSlots) {
  AppProfile app;
  app.has_ads = false;
  EXPECT_EQ(app.SlotsInSession(1000.0), 0);
}

TEST(AppCatalogTest, TopFifteenShape) {
  const AppCatalog catalog = AppCatalog::TopFifteen();
  EXPECT_EQ(catalog.size(), 15);
  for (int i = 0; i < catalog.size(); ++i) {
    const AppProfile& app = catalog.Get(i);
    EXPECT_EQ(app.app_id, i);
    EXPECT_FALSE(app.name.empty());
    EXPECT_FALSE(app.genre.empty());
    EXPECT_TRUE(app.has_ads);  // These are the top *free, ad-supported* apps.
    EXPECT_GE(app.ad_refresh_s, 30.0);
    EXPECT_LE(app.ad_refresh_s, 60.0);
    EXPECT_GT(app.ad_bytes, 0.0);
    EXPECT_GT(app.local_power_w, 0.0);
    EXPECT_LT(app.local_power_w, 2.0);
  }
}

TEST(AppCatalogTest, MixContainsContentLightAndContentHeavyApps) {
  const AppCatalog catalog = AppCatalog::TopFifteen();
  int no_periodic_content = 0;
  int heavy_content = 0;
  for (const AppProfile& app : catalog.apps()) {
    if (app.content_period_s <= 0.0) {
      ++no_periodic_content;
    }
    if (app.content_bytes >= 25.0 * kKiB) {
      ++heavy_content;
    }
  }
  // The E1 calibration depends on having both kinds.
  EXPECT_GE(no_periodic_content, 4);
  EXPECT_GE(heavy_content, 2);
}

TEST(AppCatalogDeathTest, OutOfRangeIdAborts) {
  const AppCatalog catalog = AppCatalog::TopFifteen();
  EXPECT_DEATH(catalog.Get(-1), "app_id");
  EXPECT_DEATH(catalog.Get(15), "app_id");
}

TEST(AppCatalogDeathTest, NonDenseIdsAbort) {
  AppProfile app;
  app.app_id = 5;
  EXPECT_DEATH(AppCatalog catalog({app}), "dense");
}

}  // namespace
}  // namespace pad
