// E7 — The energy/revenue tradeoff frontier: how aggressively inventory is
// sold in advance (capacity confidence) and how conservatively clients
// predict (quantile level) trade energy savings against revenue loss and
// SLA violations. Each row is one operating point of the frontier.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users) {
  PadConfig config = bench::StandardConfig(num_users);
  const SimInputs inputs = GenerateInputs(config);
  const BaselineResult baseline = RunBaseline(config, inputs);

  PrintBanner(std::cout, "E7: capacity-confidence frontier (time_of_day predictor)");
  TextTable frontier(bench::MetricsHeader("capacity_conf"));
  for (double confidence : {0.10, 0.20, 0.30, 0.40, 0.50, 0.65, 0.80}) {
    PadConfig point = config;
    point.capacity_confidence = confidence;
    frontier.AddRow(
        bench::MetricsRow(FormatDouble(confidence, 2), baseline, RunPad(point, inputs)));
  }
  frontier.Print(std::cout);

  PrintBanner(std::cout, "E7: predictor risk posture (capacity_conf = 0.30)");
  TextTable predictors(bench::MetricsHeader("predictor"));
  for (PredictorKind kind :
       {PredictorKind::kQuantileConservative, PredictorKind::kQuantileMedian,
        PredictorKind::kTimeOfDay, PredictorKind::kQuantileAggressive, PredictorKind::kEwma,
        PredictorKind::kLastValue}) {
    PadConfig point = config;
    point.predictor = kind;
    predictors.AddRow(
        bench::MetricsRow(PredictorKindName(kind), baseline, RunPad(point, inputs)));
  }
  predictors.Print(std::cout);

  PrintBanner(std::cout, "E7: planner tail model (exact Poisson-binomial vs normal approx)");
  TextTable tail_model(bench::MetricsHeader("tail_model"));
  {
    PadConfig point = config;
    point.planner.exact_tail = true;
    tail_model.AddRow(bench::MetricsRow("exact", baseline, RunPad(point, inputs)));
    point.planner.exact_tail = false;
    tail_model.AddRow(bench::MetricsRow("normal_approx", baseline, RunPad(point, inputs)));
  }
  tail_model.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250));
  return 0;
}
