// E7 — The energy/revenue tradeoff frontier: how aggressively inventory is
// sold in advance (capacity confidence) and how conservatively clients
// predict (quantile level) trade energy savings against revenue loss and
// SLA violations. Each row is one operating point of the frontier.
//
// The trace and the baseline are computed once; every PAD operating point is
// an independent run against the shared read-only inputs, fanned out through
// RunPadMany (`--threads N`).
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users, const SweepOptions& sweep, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(num_users);
  const SimInputs inputs = GenerateInputs(config);
  const BaselineResult baseline = RunBaseline(config, inputs);

  PrintBanner(std::cout, "E7: capacity-confidence frontier (time_of_day predictor)");
  const std::vector<double> confidences = {0.10, 0.20, 0.30, 0.40, 0.50, 0.65, 0.80};
  std::vector<PadConfig> confidence_points;
  for (double confidence : confidences) {
    PadConfig point = config;
    point.capacity_confidence = confidence;
    confidence_points.push_back(point);
  }
  TextTable frontier(bench::MetricsHeader("capacity_conf"));
  const std::vector<PadRunResult> frontier_runs = RunPadMany(confidence_points, inputs, sweep);
  for (size_t i = 0; i < confidences.size(); ++i) {
    frontier.AddRow(
        bench::MetricsRow(FormatDouble(confidences[i], 2), baseline, frontier_runs[i]));
    json.AddComparison("users=" + std::to_string(num_users) + " capacity_conf=" +
                           FormatDouble(confidences[i], 2),
                       Comparison{baseline, frontier_runs[i]});
  }
  frontier.Print(std::cout);

  PrintBanner(std::cout, "E7: predictor risk posture (capacity_conf = 0.30)");
  const std::vector<PredictorKind> kinds = {
      PredictorKind::kQuantileConservative, PredictorKind::kQuantileMedian,
      PredictorKind::kTimeOfDay,            PredictorKind::kQuantileAggressive,
      PredictorKind::kEwma,                 PredictorKind::kLastValue};
  std::vector<PadConfig> predictor_points;
  for (PredictorKind kind : kinds) {
    PadConfig point = config;
    point.predictor = kind;
    predictor_points.push_back(point);
  }
  TextTable predictors(bench::MetricsHeader("predictor"));
  const std::vector<PadRunResult> predictor_runs = RunPadMany(predictor_points, inputs, sweep);
  for (size_t i = 0; i < kinds.size(); ++i) {
    predictors.AddRow(
        bench::MetricsRow(PredictorKindName(kinds[i]), baseline, predictor_runs[i]));
  }
  predictors.Print(std::cout);

  PrintBanner(std::cout, "E7: planner tail model (exact Poisson-binomial vs normal approx)");
  std::vector<PadConfig> tail_points(2, config);
  tail_points[0].planner.exact_tail = true;
  tail_points[1].planner.exact_tail = false;
  TextTable tail_model(bench::MetricsHeader("tail_model"));
  const std::vector<PadRunResult> tail_runs = RunPadMany(tail_points, inputs, sweep);
  tail_model.AddRow(bench::MetricsRow("exact", baseline, tail_runs[0]));
  tail_model.AddRow(bench::MetricsRow("normal_approx", baseline, tail_runs[1]));
  tail_model.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "tradeoff");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250), pad::bench::SweepOptionsFromArgv(argc, argv),
           json);
  return json.Flush() ? 0 : 1;
}
