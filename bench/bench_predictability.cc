// E4 — App-usage predictability: per-predictor error statistics over the
// population, for several prediction-window lengths. The paper's conclusion
// this reproduces: simple client-side models (especially time-of-day ones)
// predict slot counts well enough to sell inventory against, and longer
// windows are easier to predict (relative error falls as counts aggregate).
#include "bench/bench_util.h"

#include "src/apps/workload.h"
#include "src/prediction/evaluation.h"
#include "src/prediction/predictors.h"
#include "src/prediction/slot_series.h"
#include "src/trace/generator.h"

namespace pad {
namespace {

void Run(int num_users, bench::BenchJson& json) {
  const AppCatalog catalog = AppCatalog::TopFifteen();
  PopulationConfig config;
  config.num_users = num_users;
  config.horizon_s = 28.0 * kDay;
  config.num_apps = catalog.size();
  const Population population = GeneratePopulation(config);

  // Bin every user's slots once per window length.
  const std::vector<double> windows = {1.0 * kHour, 3.0 * kHour, 6.0 * kHour, 24.0 * kHour};

  for (double window_s : windows) {
    std::vector<SlotSeries> series;
    series.reserve(population.users.size());
    for (const UserTrace& user : population.users) {
      series.push_back(BinSlots(SlotsForUser(catalog, user), population.horizon_s, window_s));
    }
    const int windows_per_day = series.front().WindowsPerDay();
    const int warmup = 7 * windows_per_day;

    PrintBanner(std::cout, "E4: prediction window T = " + FormatDouble(window_s / kHour, 0) +
                               " h (7 train days, 21 scored days, " +
                               std::to_string(num_users) + " users)");
    TextTable table({"predictor", "mean_abs_err", "p90_abs_err", "rmse", "mean_rel_err",
                     "over_rate", "under_rate"});
    for (PredictorKind kind : AllPredictorKinds()) {
      SampleSet abs_error;
      SampleSet rel_error;
      RunningStats rmse;
      WeightedMean over;
      WeightedMean under;
      for (const SlotSeries& user_series : series) {
        auto predictor = MakePredictor(kind, windows_per_day);
        const PredictionEval eval = EvaluatePredictor(*predictor, user_series.counts, warmup);
        if (eval.windows_scored == 0) {
          continue;
        }
        abs_error.AddAll(eval.abs_error.samples());
        rel_error.Add(eval.relative_error.mean());
        rmse.Add(eval.rmse);
        over.Add(eval.over_rate, eval.windows_scored);
        under.Add(eval.under_rate, eval.windows_scored);
      }
      table.AddRow({PredictorKindName(kind), FormatDouble(abs_error.mean(), 2),
                    FormatDouble(abs_error.Percentile(90.0), 2), FormatDouble(rmse.mean(), 2),
                    FormatDouble(rel_error.mean(), 2), bench::Pct(over.mean()),
                    bench::Pct(under.mean())});
      const std::string label = "users=" + std::to_string(num_users) + " window_h=" +
                                FormatDouble(window_s / kHour, 0) + " predictor=" +
                                PredictorKindName(kind);
      json.Add("mean_abs_err", abs_error.mean(), "slots", label);
      json.Add("rmse", rmse.mean(), "slots", label);
    }
    // Oracle floor for context.
    table.AddRow({"oracle", "0.00", "0.00", "0.00", "0.00", "0.0%", "0.0%"});
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "predictability");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 400), json);
  return json.Flush() ? 0 : 1;
}
