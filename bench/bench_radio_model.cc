// E9 — The radio power-model table (profile parameters) and a validation of
// the event-driven machine against closed forms. These are the substituted
// counterpart of the paper's power-meter methodology section.
#include "bench/bench_util.h"

#include "src/radio/machine.h"

namespace pad {
namespace {

void Run(bench::BenchJson& json) {
  const std::vector<RadioProfile> profiles = {ThreeGProfile(), LteProfile(), WifiProfile(),
                                              IdealProfile()};

  PrintBanner(std::cout, "E9: radio profile parameters");
  TextTable params({"radio", "promo_s", "promo_mW", "active_mW", "down_mbps", "up_mbps",
                    "rtt_ms", "tail_s", "tail_J"});
  for (const RadioProfile& profile : profiles) {
    params.AddRow({profile.name, FormatDouble(profile.promo_latency_s, 2),
                   FormatDouble(profile.promo_power_w * 1000.0, 0),
                   FormatDouble(profile.active_power_w * 1000.0, 0),
                   FormatDouble(profile.downlink_bps / 1e6, 1),
                   FormatDouble(profile.uplink_bps / 1e6, 1),
                   FormatDouble(profile.rtt_s * 1000.0, 0),
                   FormatDouble(profile.TotalTailDuration(), 1),
                   FormatDouble(profile.TotalTailEnergy(), 2)});
  }
  params.Print(std::cout);

  PrintBanner(std::cout, "E9: tail phases");
  TextTable phases({"radio", "phase", "power_mW", "duration_s", "resume_s"});
  for (const RadioProfile& profile : profiles) {
    for (const TailPhase& phase : profile.tail) {
      phases.AddRow({profile.name, phase.name, FormatDouble(phase.power_w * 1000.0, 0),
                     FormatDouble(phase.duration_s, 1),
                     FormatDouble(phase.resume_latency_s, 1)});
    }
  }
  phases.Print(std::cout);

  PrintBanner(std::cout, "E9: machine vs closed form, isolated transfers (J)");
  TextTable validation({"radio", "bytes", "closed_form", "machine", "delta"});
  for (const RadioProfile& profile : profiles) {
    for (double kib : {1.0, 3.0, 50.0, 1024.0}) {
      const double bytes = kib * kKiB;
      const double closed = profile.IsolatedTransferEnergy(bytes, false);
      const std::vector<Transfer> one = {Transfer{.request_time = 0.0,
                                                  .bytes = bytes,
                                                  .direction = Direction::kDownlink,
                                                  .category = TrafficCategory::kOther}};
      const double machine = SimulateTransfers(profile, one, 1e9).total_energy_j();
      validation.AddRow({profile.name, FormatDouble(kib, 0) + "KiB", FormatDouble(closed, 3),
                         FormatDouble(machine, 3), FormatDouble(machine - closed, 6)});
      json.Add("isolated_transfer_j", machine, "J",
               "radio=" + std::string(profile.name) + " kib=" + FormatDouble(kib, 0));
    }
  }
  validation.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "radio_model");
  pad::Run(json);
  return json.Flush() ? 0 : 1;
}
