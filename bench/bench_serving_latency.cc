// E21 — Serving latency under closed-loop load, digest-locked.
//
// Boots the real-time front end (src/serve) on an ephemeral loopback port,
// drives it with the closed-loop load generator, and reports the latency
// distribution (p50/p99/p999 in microseconds), throughput, and an
// order-independent digest of every decision byte served. The latency and
// QPS rows are wall-clock facts and are ignored by the CI gate; the digest
// and count rows are deterministic — the serving path re-deciding a single
// impression differently, dropping a response, or shedding a connection it
// should have admitted fails `tools/bench_compare` at zero tolerance.
//
//   $ bench_serving_latency --json BENCH_serving_latency.json
//   $ bench_serving_latency 1024 --connections 16 --requests 1000
//
// Digest construction: per connection, FNV-1a over that connection's
// concatenated response payloads (order within a connection is part of the
// protocol); the per-connection digests are then summed with wrapping
// arithmetic so the total is independent of which connection finished first.
#include <thread>

#include "bench/bench_util.h"
#include "src/serve/ad_server.h"
#include "src/serve/latency_histogram.h"
#include "src/serve/load_gen.h"
#include "src/serve/session_adapter.h"

namespace pad {
namespace {

struct ServingBenchOptions {
  int users = 256;
  int connections = 8;
  int requests = 200;
  uint64_t seed = 424242;
};

ServingBenchOptions OptionsFromArgv(int argc, char** argv) {
  ServingBenchOptions options;
  options.users = bench::UsersFromArgv(argc, argv, options.users);
  for (int i = 1; i < argc; ++i) {
    auto int_flag = [&](const char* name, int* out) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = std::atoi(argv[i + 1]);
      }
    };
    int_flag("--connections", &options.connections);
    int_flag("--requests", &options.requests);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    }
  }
  return options;
}

uint64_t Fnv1a(const std::string& bytes, uint64_t hash) {
  for (const char byte : bytes) {
    hash ^= static_cast<uint8_t>(byte);
    hash *= 1099511628211ull;
  }
  return hash;
}

double Hi(uint64_t digest) { return static_cast<double>(digest >> 32); }
double Lo(uint64_t digest) { return static_cast<double>(digest & 0xffffffffull); }

int Run(const ServingBenchOptions& serving, bench::BenchJson& json) {
  const std::string label = "users=" + std::to_string(serving.users) +
                            " connections=" + std::to_string(serving.connections) +
                            " requests=" + std::to_string(serving.requests);
  PrintBanner(std::cout, "E21: serving latency, closed loop (" + label + ")");

  const ServeConfig config = DefaultServeConfig(serving.users);
  StatusOr<std::unique_ptr<DecisionEngine>> engine = DecisionEngine::Create(config);
  if (!engine.ok()) {
    std::cerr << "bench_serving_latency: " << engine.status().ToString() << "\n";
    return 1;
  }

  AdServerOptions server_options;
  server_options.max_sessions = serving.connections + 8;
  AdServer server(**engine, server_options);
  if (const Status started = server.Start(); !started.ok()) {
    std::cerr << "bench_serving_latency: " << started.ToString() << "\n";
    return 1;
  }
  std::thread server_thread([&server] { server.Run(); });

  LoadGenOptions load;
  load.port = server.port();
  load.connections = serving.connections;
  load.requests_per_connection = serving.requests;
  load.client_count = (*engine)->num_clients();
  load.seed = serving.seed;
  load.capture_responses = true;

  LatencyHistogram latency;
  LoadGenReport report;
  const Status run = RunLoadGen(load, latency, &report);
  server.RequestDrain();
  server_thread.join();
  if (!run.ok()) {
    std::cerr << "bench_serving_latency: " << run.ToString() << "\n";
    return 1;
  }

  // Order-independent decision digest plus the bundle mix, from the same
  // captured payloads a correctness test would compare.
  uint64_t digest = 0;
  int64_t bundles = 0;
  int64_t decided = 0;
  for (const std::vector<std::string>& connection : report.captured) {
    uint64_t connection_digest = 14695981039346656037ull;
    for (const std::string& payload : connection) {
      connection_digest = Fnv1a(payload, connection_digest);
      ++decided;
      const StatusOr<WireResponse> response = DecodeResponsePayload(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(payload.data()), payload.size()));
      if (response.ok() && response->decision == DecisionKind::kBundle) {
        ++bundles;
      }
    }
    digest += connection_digest;  // Wrapping sum: connection-order free.
  }
  const double bundle_fraction =
      decided > 0 ? static_cast<double>(bundles) / static_cast<double>(decided) : 0.0;

  const double p50_us = static_cast<double>(latency.ValueAtQuantile(0.50)) / 1000.0;
  const double p99_us = static_cast<double>(latency.ValueAtQuantile(0.99)) / 1000.0;
  const double p999_us = static_cast<double>(latency.ValueAtQuantile(0.999)) / 1000.0;

  TextTable table({"metric", "value"});
  table.AddRow({"requests", std::to_string(report.requests_sent)});
  table.AddRow({"responses", std::to_string(report.responses)});
  table.AddRow({"shed", std::to_string(report.shed)});
  table.AddRow({"errors", std::to_string(report.errors)});
  table.AddRow({"p50", FormatDouble(p50_us, 1) + " us"});
  table.AddRow({"p99", FormatDouble(p99_us, 1) + " us"});
  table.AddRow({"p999", FormatDouble(p999_us, 1) + " us"});
  table.AddRow({"max", FormatDouble(static_cast<double>(latency.max()) / 1000.0, 1) + " us"});
  table.AddRow({"wall time", FormatDouble(report.wall_s, 2) + " s"});
  table.AddRow({"throughput", FormatDouble(report.qps, 0) + " qps"});
  table.AddRow({"bundle fraction", bench::Pct(bundle_fraction)});
  table.AddRow({"decision digest", FormatDouble(Hi(digest), 0) + " / " +
                                       FormatDouble(Lo(digest), 0)});
  table.Print(std::cout);

  if (report.errors != 0 || report.shed != 0 ||
      report.responses != static_cast<int64_t>(serving.connections) * serving.requests) {
    std::cerr << "bench_serving_latency: lossy run (errors=" << report.errors
              << " shed=" << report.shed << " responses=" << report.responses << ")\n";
    return 1;
  }

  json.Add("p50_us", p50_us, "us", label);
  json.Add("p99_us", p99_us, "us", label);
  json.Add("p999_us", p999_us, "us", label);
  json.Add("qps", report.qps, "qps", label);
  json.Add("responses", static_cast<double>(report.responses), "count", label);
  json.Add("shed", static_cast<double>(report.shed), "count", label);
  json.Add("errors", static_cast<double>(report.errors), "count", label);
  json.Add("bundle_fraction", bundle_fraction, "fraction", label);
  json.Add("decision_digest_hi", Hi(digest), "u32", label);
  json.Add("decision_digest_lo", Lo(digest), "u32", label);
  return 0;
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  const pad::ServingBenchOptions options = pad::OptionsFromArgv(argc, argv);
  pad::bench::BenchJson json(argc, argv, "serving_latency");
  const int status = pad::Run(options, json);
  if (status != 0) {
    return status;
  }
  return json.Flush() ? 0 : 1;
}
