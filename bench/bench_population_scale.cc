// E10 — Population effect: overbooking pools risk across clients, so the
// replica planner (and the rescue pass) need a large enough population to
// find capable backups. Small deployments see worse SLA/loss at the same
// policy settings.
//
// Each population size is one independent paired run, so the seven points
// fan out across the sweep engine; `--threads N` sets the concurrency and
// leaves every number bit-identical to the serial run.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(const SweepOptions& sweep) {
  PrintBanner(std::cout, "E10: metrics vs population size (same policy everywhere)");
  const std::vector<int> sizes = {10, 25, 50, 100, 200, 400, 800};
  std::vector<PadConfig> configs;
  configs.reserve(sizes.size());
  for (int users : sizes) {
    configs.push_back(bench::StandardConfig(users));
  }
  const std::vector<Comparison> results = RunComparisonMany(configs, sweep);

  TextTable table(bench::MetricsHeader("users"));
  for (size_t i = 0; i < sizes.size(); ++i) {
    table.AddRow(bench::MetricsRow(std::to_string(sizes[i]), results[i].baseline,
                                   results[i].pad));
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::Run(pad::bench::SweepOptionsFromArgv(argc, argv));
  return 0;
}
