// E10 — Population effect: overbooking pools risk across clients, so the
// replica planner (and the rescue pass) need a large enough population to
// find capable backups. Small deployments see worse SLA/loss at the same
// policy settings.
//
// Each population size is one independent paired run, so the seven points
// fan out across the sweep engine; `--threads N` sets the concurrency and
// leaves every number bit-identical to the serial run.
//
// E17 — Population scale ceiling: `--scale_users N` switches to the
// streaming sharded engine (src/core/shard_engine.h) and runs one paired
// comparison at N users under a resident-memory budget, reporting wall-clock
// throughput (users/s) and peak RSS. This is the mode that produces the
// checked-in BENCH_population_scale.json baseline:
//
//   $ bench_population_scale --scale_users 1000000 --market_users 2000 \
//       --max_resident_users 20000 --days 9 --json BENCH_population_scale.json
//
// `--checkpoint_overhead` additionally repeats the run with the crash-recovery
// journal (src/core/checkpoint.h) enabled and reports wall_on/wall_off as the
// `checkpoint_overhead` metric, asserting the journaled run's digests match.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/shard_engine.h"

namespace pad {
namespace {

// Peak resident set size of this process in MiB (ru_maxrss is KiB on Linux).
double PeakRssMib() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

void RunPopulationEffect(const SweepOptions& sweep, bench::BenchJson& json) {
  PrintBanner(std::cout, "E10: metrics vs population size (same policy everywhere)");
  const std::vector<int> sizes = {10, 25, 50, 100, 200, 400, 800};
  std::vector<PadConfig> configs;
  configs.reserve(sizes.size());
  for (int users : sizes) {
    configs.push_back(bench::StandardConfig(users));
  }
  const std::vector<Comparison> results = RunComparisonMany(configs, sweep);

  TextTable table(bench::MetricsHeader("users"));
  for (size_t i = 0; i < sizes.size(); ++i) {
    table.AddRow(bench::MetricsRow(std::to_string(sizes[i]), results[i].baseline,
                                   results[i].pad));
    json.AddComparison("users=" + std::to_string(sizes[i]), results[i]);
  }
  table.Print(std::cout);
}

struct ScaleOptions {
  int64_t users = 0;
  int64_t market_users = 2000;
  int shards = 1;
  int threads = 1;
  int64_t max_resident_users = 20000;
  double days = 9.0;  // 7 warmup + 2 scored keeps 1M users tractable.
  // --checkpoint_overhead: repeat the run with the crash-recovery journal
  // enabled (fsync per market) and report wall_on/wall_off. Off by default
  // because it doubles the bench time at full scale.
  bool measure_checkpoint = false;
};

ScaleOptions ScaleOptionsFromArgv(int argc, char** argv) {
  ScaleOptions options;
  auto int_flag = [&](const char* name, int64_t* out, int i) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      *out = std::atoll(argv[i + 1]);
    }
  };
  for (int i = 1; i < argc; ++i) {
    int_flag("--scale_users", &options.users, i);
    int_flag("--market_users", &options.market_users, i);
    int_flag("--max_resident_users", &options.max_resident_users, i);
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      options.shards = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      options.days = std::atof(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--checkpoint_overhead") == 0) {
      options.measure_checkpoint = true;
    }
  }
  return options;
}

int RunScaleCeiling(const ScaleOptions& scale, const SweepOptions& sweep,
                    bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(static_cast<int>(scale.users));
  config.population.horizon_s = scale.days * kDay;
  config.market_users = scale.market_users;
  // Demand scales per market inside the engine; pin the population-wide rate
  // the same way StandardConfig does.
  ShardEngineOptions options;
  options.shards = scale.shards;
  options.threads = sweep.threads;
  options.max_resident_users = scale.max_resident_users;
  options.event_digests = false;
  if (const std::string error = ValidateShardOptions(config, options); !error.empty()) {
    std::cerr << "bench_population_scale: " << error << "\n";
    return 1;
  }

  const std::string label =
      "users=" + std::to_string(scale.users) + " days=" + FormatDouble(scale.days, 0) +
      " market_users=" + std::to_string(scale.market_users) +
      " max_resident_users=" + std::to_string(scale.max_resident_users);
  PrintBanner(std::cout, "E17: streaming scale ceiling (" + label + ")");

  const auto start = std::chrono::steady_clock::now();
  const ShardedComparison result = RunShardedComparison(config, options);
  const double wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const double users_per_s = static_cast<double>(result.total_users) / wall_s;
  const double rss_mib = PeakRssMib();

  TextTable table({"metric", "value"});
  table.AddRow({"users", std::to_string(result.total_users)});
  table.AddRow({"markets", std::to_string(result.num_markets)});
  table.AddRow({"sessions", std::to_string(result.total_sessions)});
  table.AddRow({"wall time", FormatDouble(wall_s, 1) + " s"});
  table.AddRow({"throughput", FormatDouble(users_per_s, 1) + " users/s"});
  table.AddRow({"generate / simulate",
                FormatDouble(result.generate_seconds, 1) + " s / " +
                    FormatDouble(result.simulate_seconds, 1) + " s"});
  table.AddRow({"peak resident users", std::to_string(result.peak_resident_users)});
  table.AddRow({"peak RSS", FormatDouble(rss_mib, 1) + " MiB"});
  table.AddRow({"ad energy savings", bench::Pct(result.totals.AdEnergySavings())});
  table.AddRow({"SLA violation rate",
                bench::Pct(result.totals.pad.ledger.SlaViolationRate(), 2)});
  table.AddRow({"revenue loss rate",
                bench::Pct(result.totals.pad.ledger.RevenueLossRate(), 2)});
  table.AddRow({"revenue vs baseline", bench::Pct(result.totals.RevenueRatio())});
  table.AddRow({"cache hit rate", bench::Pct(result.totals.pad.service.CacheHitRate())});
  table.AddRow({"mean replication", FormatDouble(result.totals.pad.MeanReplication(), 2)});
  table.Print(std::cout);

  json.AddComparison(label, result.totals);
  json.Add("sessions", static_cast<double>(result.total_sessions), "count", label);
  json.Add("peak_resident_users", static_cast<double>(result.peak_resident_users), "users",
           label);
  json.Add("users_per_sec", users_per_s, "users/s", label);
  json.Add("max_rss_mib", rss_mib, "MiB", label);

  if (scale.measure_checkpoint) {
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string journal = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                                "/bench_population_scale.ckpt";
    std::remove(journal.c_str());
    ShardEngineOptions journaled = options;
    journaled.checkpoint_path = journal;
    journaled.checkpoint_fsync = true;

    const auto ck_start = std::chrono::steady_clock::now();
    const StatusOr<ShardedComparison> ck_result = RunShardedResumable(config, journaled);
    const double ck_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - ck_start).count();
    if (!ck_result.ok()) {
      std::cerr << "bench_population_scale: checkpointed run failed: "
                << ck_result.status().ToString() << "\n";
      return ExitCodeFor(ck_result.status());
    }
    // Journaling must never change the numbers, only the wall clock.
    if (ck_result->combined_pad_digest != result.combined_pad_digest) {
      std::cerr << "bench_population_scale: checkpointed run diverged from plain run\n";
      return ExitCodeFor(Status::Internal("digest mismatch with journaling enabled"));
    }
    std::remove(journal.c_str());

    const double overhead = ck_wall_s / wall_s;
    TextTable ck_table({"metric", "value"});
    ck_table.AddRow({"wall time (journal on)", FormatDouble(ck_wall_s, 1) + " s"});
    ck_table.AddRow({"wall time (journal off)", FormatDouble(wall_s, 1) + " s"});
    ck_table.AddRow({"checkpoint overhead", FormatDouble(overhead, 3) + "x"});
    ck_table.Print(std::cout);
    json.Add("checkpoint_overhead", overhead, "ratio", label);
  }
  return 0;
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  const pad::SweepOptions sweep = pad::bench::SweepOptionsFromArgv(argc, argv);
  const pad::ScaleOptions scale = pad::ScaleOptionsFromArgv(argc, argv);
  pad::bench::BenchJson json(argc, argv, "population_scale");
  if (scale.users > 0) {
    const int status = pad::RunScaleCeiling(scale, sweep, json);
    if (status != 0) {
      return status;
    }
  } else {
    pad::RunPopulationEffect(sweep, json);
  }
  return json.Flush() ? 0 : 1;
}
