// E10 — Population effect: overbooking pools risk across clients, so the
// replica planner (and the rescue pass) need a large enough population to
// find capable backups. Small deployments see worse SLA/loss at the same
// policy settings.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run() {
  PrintBanner(std::cout, "E10: metrics vs population size (same policy everywhere)");
  TextTable table(bench::MetricsHeader("users"));
  for (int users : {10, 25, 50, 100, 200, 400, 800}) {
    PadConfig config = bench::StandardConfig(users);
    const SimInputs inputs = GenerateInputs(config);
    const BaselineResult baseline = RunBaseline(config, inputs);
    const PadRunResult pad = RunPad(config, inputs);
    table.AddRow(bench::MetricsRow(std::to_string(users), baseline, pad));
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main() {
  pad::Run();
  return 0;
}
