// E14 (extension) — WiFi offload: how much of the ad energy problem (and of
// prefetching's advantage) survives when users have home WiFi every night.
// The baseline benefits too (its nightly fetches ride WiFi), but only
// prefetching can concentrate bulk transfers into the cheap windows.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(num_users);
  const SimInputs inputs = GenerateInputs(config);

  struct Scenario {
    const char* label;
    bool wifi;
  };
  PrintBanner(std::cout, "E14: cellular-only vs nightly home WiFi (19:00-08:00)");
  TextTable table({"scenario", "baseline_ad_kJ", "pad_ad_kJ", "savings", "sla_violation",
                   "rev_loss"});
  for (const Scenario& scenario : {Scenario{"3g_only", false}, Scenario{"3g_plus_wifi", true}}) {
    PadConfig point = config;
    point.wifi.enabled = scenario.wifi;
    const BaselineResult baseline = RunBaseline(point, inputs);
    const PadRunResult pad = RunPad(point, inputs);
    Comparison comparison{baseline, pad};
    table.AddRow({scenario.label, FormatDouble(baseline.energy.AdEnergyJ() / 1000.0, 1),
                  FormatDouble(pad.energy.AdEnergyJ() / 1000.0, 1),
                  bench::Pct(comparison.AdEnergySavings()),
                  bench::Pct(pad.ledger.SlaViolationRate(), 2),
                  bench::Pct(pad.ledger.RevenueLossRate(), 2)});
    json.AddComparison(
        "users=" + std::to_string(num_users) + " scenario=" + scenario.label, comparison);
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "E14: WiFi window length sweep (PAD, window ends 08:00)");
  TextTable sweep({"window_start", "baseline_ad_kJ", "pad_ad_kJ", "savings"});
  for (double start_h : {23.0, 21.0, 19.0, 17.0}) {
    PadConfig point = config;
    point.wifi.enabled = true;
    point.wifi.home_start_h = start_h;
    const BaselineResult baseline = RunBaseline(point, inputs);
    const PadRunResult pad = RunPad(point, inputs);
    Comparison comparison{baseline, pad};
    sweep.AddRow({FormatDouble(start_h, 0) + ":00",
                  FormatDouble(baseline.energy.AdEnergyJ() / 1000.0, 1),
                  FormatDouble(pad.energy.AdEnergyJ() / 1000.0, 1),
                  bench::Pct(comparison.AdEnergySavings())});
  }
  sweep.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "wifi_offload");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250), json);
  return json.Flush() ? 0 : 1;
}
