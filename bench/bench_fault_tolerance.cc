// E16 (extension) — Fault tolerance: how gracefully does PAD degrade when
// the network misbehaves? The paper's evaluation assumes reports, bundles,
// and sync epochs all arrive; this harness injects deterministic faults
// (core/faults.h) at rising rates and regenerates the headline metrics at
// each rate, plus the fault accounting itself.
//
// Two sweeps:
//   * uniform — drop/fetch/sync/offline all at rate r (delayed reports at
//     r/2): the "bad network" axis. Sales shrink as the server's view of
//     client inventory goes stale, so revenue degrades but SLA quality is
//     defended by conservative selling.
//   * fetch+sync — only bundle fetches and cache syncs fail: sale volume is
//     untouched, so this isolates the energy-and-quality cost of faults
//     (wasted radio transfers, lost invalidations).
//
// Rate 0 is asserted (not just assumed) to be byte-identical to the
// fault-free run before any row prints.
#include "bench/bench_util.h"
#include "src/common/check.h"

namespace pad {
namespace {

const std::vector<double> kRates = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2};

std::vector<std::string> FaultRow(const std::string& label, const BaselineResult& baseline,
                                  const PadRunResult& pad) {
  std::vector<std::string> row = bench::MetricsRow(label, baseline, pad);
  row.push_back(std::to_string(pad.faults.reports_dropped));
  row.push_back(std::to_string(pad.faults.fetch_failures));
  row.push_back(std::to_string(pad.faults.syncs_missed));
  row.push_back(std::to_string(pad.faults.offline_epochs));
  return row;
}

std::vector<std::string> FaultHeader() {
  std::vector<std::string> header = bench::MetricsHeader("fault_rate");
  header.insert(header.end(), {"rep_drops", "fetch_fails", "sync_misses", "off_epochs"});
  return header;
}

void Run(int num_users, const SweepOptions& sweep, bench::BenchJson& json) {
  const PadConfig config = bench::StandardConfig(num_users);
  const SimInputs inputs = GenerateInputs(config);
  const BaselineResult baseline = RunBaseline(config, inputs);
  const PadRunResult fault_free = RunPad(config, inputs);

  PrintBanner(std::cout, "E16: uniform fault sweep (drop/fetch/sync/offline at r, delay r/2)");
  std::vector<PadConfig> uniform;
  for (double rate : kRates) {
    PadConfig point = config;
    point.faults = FaultConfig::Uniform(rate);
    point.faults.report_delay_rate = rate / 2.0;
    uniform.push_back(point);
  }
  std::vector<PadRunResult> runs = RunPadMany(uniform, inputs, sweep);
  // The fault layer must vanish at rate 0: same run, bit for bit.
  PAD_CHECK(MetricsDigest(runs[0]) == MetricsDigest(fault_free));
  TextTable table(FaultHeader());
  for (size_t i = 0; i < kRates.size(); ++i) {
    table.AddRow(FaultRow(FormatDouble(kRates[i], 2), baseline, runs[i]));
    json.AddComparison("users=" + std::to_string(num_users) + " sweep=uniform rate=" +
                           FormatDouble(kRates[i], 2),
                       Comparison{baseline, runs[i]});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "E16: fetch+sync faults only (sale-neutral, energy-wasting)");
  std::vector<PadConfig> partial;
  for (double rate : kRates) {
    PadConfig point = config;
    point.faults.fetch_failure_rate = rate;
    point.faults.sync_miss_rate = rate;
    partial.push_back(point);
  }
  runs = RunPadMany(partial, inputs, sweep);
  TextTable partial_table(FaultHeader());
  for (size_t i = 0; i < kRates.size(); ++i) {
    partial_table.AddRow(FaultRow(FormatDouble(kRates[i], 2), baseline, runs[i]));
  }
  partial_table.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "fault_tolerance");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250), pad::bench::SweepOptionsFromArgv(argc, argv),
           json);
  return json.Flush() ? 0 : 1;
}
