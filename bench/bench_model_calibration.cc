// E15 (extension) — Is the overbooking model honest? For every dispatched
// impression the planner predicts P(displayed before deadline); this harness
// buckets those predictions and compares them with what actually happened.
// A well-calibrated system hugs the diagonal; points above it show the
// rescue pass recovering what the dispatch-time plan under-promised.
#include "bench/bench_util.h"

namespace pad {
namespace {

void PrintCurve(const char* title, const PadRunResult& pad) {
  PrintBanner(std::cout, title);
  TextTable table({"predicted_range", "impressions", "mean_predicted", "realized", "delta"});
  for (int b = 0; b < kCalibrationBuckets; ++b) {
    const CalibrationBucket& bucket = pad.calibration[static_cast<size_t>(b)];
    if (bucket.planned == 0) {
      continue;
    }
    const double lo = static_cast<double>(b) / kCalibrationBuckets;
    const double hi = static_cast<double>(b + 1) / kCalibrationBuckets;
    table.AddRow({FormatDouble(lo, 1) + "-" + FormatDouble(hi, 1),
                  std::to_string(bucket.planned), FormatDouble(bucket.PredictedRate(), 3),
                  FormatDouble(bucket.RealizedRate(), 3),
                  FormatDouble(bucket.RealizedRate() - bucket.PredictedRate(), 3)});
  }
  table.Print(std::cout);
}

void Run(int num_users) {
  PadConfig config = bench::StandardConfig(num_users);
  const SimInputs inputs = GenerateInputs(config);

  {
    const PadRunResult pad = RunPad(config, inputs);
    PrintCurve("E15: calibration, full system (rescue on)", pad);
  }
  {
    PadConfig point = config;
    point.rescue_enabled = false;
    const PadRunResult pad = RunPad(point, inputs);
    PrintCurve("E15: calibration, rescue disabled (raw dispatch-time model)", pad);
  }
  {
    PadConfig point = config;
    point.rescue_enabled = false;
    point.planner.confidence_discount = 0.7;
    const PadRunResult pad = RunPad(point, inputs);
    PrintCurve("E15: calibration with 0.7 confidence discount (distrust the model)", pad);
  }

  std::cout << "\nReading: 'realized' above 'mean_predicted' means the system over-delivers\n"
               "(rescue or conservative modeling); below means the model is optimistic.\n";
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250));
  return 0;
}
