// E15 (extension) — Is the overbooking model honest? For every dispatched
// impression the planner predicts P(displayed before deadline); this harness
// buckets those predictions and compares them with what actually happened.
// A well-calibrated system hugs the diagonal; points above it show the
// rescue pass recovering what the dispatch-time plan under-promised.
#include "bench/bench_util.h"

namespace pad {
namespace {

void PrintCurve(const char* title, const PadRunResult& pad) {
  PrintBanner(std::cout, title);
  TextTable table({"predicted_range", "impressions", "mean_predicted", "realized", "delta"});
  for (int b = 0; b < kCalibrationBuckets; ++b) {
    const CalibrationBucket& bucket = pad.calibration[static_cast<size_t>(b)];
    if (bucket.planned == 0) {
      continue;
    }
    const double lo = static_cast<double>(b) / kCalibrationBuckets;
    const double hi = static_cast<double>(b + 1) / kCalibrationBuckets;
    table.AddRow({FormatDouble(lo, 1) + "-" + FormatDouble(hi, 1),
                  std::to_string(bucket.planned), FormatDouble(bucket.PredictedRate(), 3),
                  FormatDouble(bucket.RealizedRate(), 3),
                  FormatDouble(bucket.RealizedRate() - bucket.PredictedRate(), 3)});
  }
  table.Print(std::cout);
}

// Impression-weighted mean |realized - predicted| across occupied buckets.
double CalibrationMae(const PadRunResult& pad) {
  double weighted = 0.0;
  double total = 0.0;
  for (const CalibrationBucket& bucket : pad.calibration) {
    if (bucket.planned == 0) {
      continue;
    }
    weighted += std::fabs(bucket.RealizedRate() - bucket.PredictedRate()) *
                static_cast<double>(bucket.planned);
    total += static_cast<double>(bucket.planned);
  }
  return total > 0.0 ? weighted / total : 0.0;
}

void Run(int num_users, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(num_users);
  const SimInputs inputs = GenerateInputs(config);
  const std::string label = "users=" + std::to_string(num_users);

  {
    const PadRunResult pad = RunPad(config, inputs);
    PrintCurve("E15: calibration, full system (rescue on)", pad);
    json.Add("calibration_mae_full", CalibrationMae(pad), "fraction", label);
  }
  {
    PadConfig point = config;
    point.rescue_enabled = false;
    const PadRunResult pad = RunPad(point, inputs);
    PrintCurve("E15: calibration, rescue disabled (raw dispatch-time model)", pad);
    json.Add("calibration_mae_no_rescue", CalibrationMae(pad), "fraction", label);
  }
  {
    PadConfig point = config;
    point.rescue_enabled = false;
    point.planner.confidence_discount = 0.7;
    const PadRunResult pad = RunPad(point, inputs);
    PrintCurve("E15: calibration with 0.7 confidence discount (distrust the model)", pad);
    json.Add("calibration_mae_discounted", CalibrationMae(pad), "fraction", label);
  }

  std::cout << "\nReading: 'realized' above 'mean_predicted' means the system over-delivers\n"
               "(rescue or conservative modeling); below means the model is optimistic.\n";
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "model_calibration");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250), json);
  return json.Flush() ? 0 : 1;
}
