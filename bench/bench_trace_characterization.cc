// E3 — Usage-trace characterization: the distributions the paper reports for
// its 1,700-user traces, computed on the synthetic population that stands in
// for them: sessions/day across users, session lengths, hour-of-day profile,
// ad slots per user-hour, and day-to-day regularity.
#include "bench/bench_util.h"

#include "src/apps/workload.h"
#include "src/prediction/slot_series.h"
#include "src/trace/generator.h"
#include "src/trace/trace_stats.h"

namespace pad {
namespace {

void Run(int num_users, bench::BenchJson& json) {
  const AppCatalog catalog = AppCatalog::TopFifteen();
  PopulationConfig config;
  config.num_users = num_users;
  config.horizon_s = 28.0 * kDay;
  config.num_apps = catalog.size();
  const Population population = GeneratePopulation(config);
  const TraceStats stats = ComputeTraceStats(population);

  PrintBanner(std::cout, "E3: population (" + std::to_string(num_users) + " users, 4 weeks)");
  TextTable overview({"metric", "value"});
  overview.AddRow({"users", std::to_string(stats.num_users)});
  overview.AddRow({"sessions", std::to_string(stats.num_sessions)});
  overview.AddRow({"mean sessions/user/day",
                   FormatDouble(stats.sessions_per_user_day.mean(), 1)});
  overview.AddRow({"median session length (s)",
                   FormatDouble(stats.session_duration_s.Median(), 0)});
  overview.Print(std::cout);

  PrintBanner(std::cout, "E3: CDF of sessions per user-day (user heterogeneity)");
  TextTable sessions_cdf({"percentile", "sessions_per_day"});
  for (double p : {5.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    sessions_cdf.AddRow({FormatDouble(p, 0),
                         FormatDouble(stats.sessions_per_user_day.Percentile(p), 1)});
  }
  sessions_cdf.Print(std::cout);

  PrintBanner(std::cout, "E3: CDF of session duration (s)");
  TextTable duration_cdf({"percentile", "duration_s"});
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    duration_cdf.AddRow({FormatDouble(p, 0),
                         FormatDouble(stats.session_duration_s.Percentile(p), 0)});
  }
  duration_cdf.Print(std::cout);

  PrintBanner(std::cout, "E3: session starts by hour of day (diurnal profile)");
  TextTable hourly({"hour", "share"});
  for (int h = 0; h < 24; ++h) {
    hourly.AddRow({std::to_string(h), bench::Pct(stats.hourly_fraction[static_cast<size_t>(h)])});
  }
  hourly.Print(std::cout);

  // Slots per user-hour: the quantity the predictors forecast.
  SampleSet slots_per_active_hour;
  SampleSet daily_slots_per_user;
  SampleSet day_autocorrelation;
  for (const UserTrace& user : population.users) {
    const auto slots = SlotsForUser(catalog, user);
    const SlotSeries hourly_series = BinSlots(slots, population.horizon_s, kHour);
    for (int count : hourly_series.counts) {
      if (count > 0) {
        slots_per_active_hour.Add(count);
      }
    }
    daily_slots_per_user.Add(static_cast<double>(hourly_series.TotalSlots()) /
                             (population.horizon_s / kDay));
    day_autocorrelation.Add(DailyCountAutocorrelation(user, population.horizon_s, 1));
  }

  PrintBanner(std::cout, "E3: ad slots (display opportunities)");
  TextTable slots({"metric", "value"});
  slots.AddRow({"mean slots/user/day", FormatDouble(daily_slots_per_user.mean(), 1)});
  slots.AddRow({"p50 slots/user/day", FormatDouble(daily_slots_per_user.Median(), 1)});
  slots.AddRow({"p90 slots/user/day", FormatDouble(daily_slots_per_user.Percentile(90.0), 1)});
  slots.AddRow({"mean slots in an active hour", FormatDouble(slots_per_active_hour.mean(), 1)});
  slots.AddRow({"p90 slots in an active hour",
                FormatDouble(slots_per_active_hour.Percentile(90.0), 1)});
  slots.AddRow({"mean lag-1 day autocorrelation",
                FormatDouble(day_autocorrelation.mean(), 3)});
  slots.Print(std::cout);

  const std::string label = "users=" + std::to_string(num_users) + " weeks=4";
  json.Add("sessions_per_user_day", stats.sessions_per_user_day.mean(), "sessions", label);
  json.Add("median_session_s", stats.session_duration_s.Median(), "s", label);
  json.Add("mean_slots_per_user_day", daily_slots_per_user.mean(), "slots", label);
  json.Add("day_autocorrelation", day_autocorrelation.mean(), "corr", label);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "trace_characterization");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 1700), json);
  return json.Flush() ? 0 : 1;
}
