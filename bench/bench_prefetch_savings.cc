// E5 — The headline result: prefetching cuts the ad energy overhead by more
// than 50% with small revenue loss and SLA violation rates (paper abstract),
// plus the savings-vs-prediction-window series.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(num_users);
  SimInputs inputs = GenerateInputs(config);
  const BaselineResult baseline = RunBaseline(config, inputs);

  PrintBanner(std::cout, "E5: headline comparison (" + std::to_string(num_users) +
                             " users, 2 scored weeks, 3G, T = 1 h, D = 3 h)");
  const PadRunResult pad = RunPad(config, inputs);
  const Comparison headline{baseline, pad};
  json.AddComparison("users=" + std::to_string(num_users) + " window_h=1 deadline_h=3",
                     headline);
  TextTable table({"metric", "measured", "paper"});
  table.AddRow({"ad energy savings", bench::Pct(headline.AdEnergySavings()), ">50%"});
  table.AddRow({"SLA violation rate", bench::Pct(pad.ledger.SlaViolationRate(), 2),
                "negligible"});
  table.AddRow({"revenue loss rate", bench::Pct(pad.ledger.RevenueLossRate(), 2),
                "negligible"});
  table.AddRow({"revenue vs baseline", bench::Pct(headline.RevenueRatio()), "~100%"});
  table.AddRow({"cache hit rate", bench::Pct(pad.service.CacheHitRate()), "-"});
  table.AddRow({"mean replication", FormatDouble(pad.MeanReplication(), 2), "small"});
  table.Print(std::cout);

  PrintBanner(std::cout, "E5: absolute energy (J, population total over scored phase)");
  TextTable energy({"component", "baseline", "pad"});
  auto joules = [](double j) { return FormatDouble(j / 1000.0, 1) + " kJ"; };
  energy.AddRow({"ad machinery (fetch+prefetch+reports)",
                 joules(baseline.energy.AdEnergyJ()), joules(pad.energy.AdEnergyJ())});
  energy.AddRow({"app content",
                 joules(baseline.energy.radio.For(TrafficCategory::kAppContent).total_j()),
                 joules(pad.energy.radio.For(TrafficCategory::kAppContent).total_j())});
  energy.AddRow({"all communication", joules(baseline.energy.CommEnergyJ()),
                 joules(pad.energy.CommEnergyJ())});
  energy.AddRow({"local (CPU+display)", joules(baseline.energy.local_j),
                 joules(pad.energy.local_j)});
  energy.Print(std::cout);

  PrintBanner(std::cout, "E5: savings vs prediction window T (D = 3 h)");
  TextTable sweep(bench::MetricsHeader("T"));
  for (double window_h : {1.0, 2.0, 3.0, 6.0}) {
    PadConfig point = config;
    point.prediction_window_s = window_h * kHour;
    const PadRunResult result = RunPad(point, inputs);
    sweep.AddRow(bench::MetricsRow(FormatDouble(window_h, 0) + "h", baseline, result));
  }
  sweep.Print(std::cout);

  PrintBanner(std::cout, "E5: seed stability (independent trace + market draws)");
  TextTable seeds({"seed", "savings", "sla_violation", "rev_loss"});
  SampleSet savings_samples;
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    PadConfig point = config;
    point.population.seed = seed;
    point.campaigns.seed = seed ^ 0xc0ffee;
    point.seed = seed;
    const SimInputs seeded = GenerateInputs(point);
    const BaselineResult seeded_baseline = RunBaseline(point, seeded);
    const PadRunResult seeded_pad = RunPad(point, seeded);
    const Comparison comparison{seeded_baseline, seeded_pad};
    savings_samples.Add(comparison.AdEnergySavings());
    seeds.AddRow({std::to_string(seed), bench::Pct(comparison.AdEnergySavings()),
                  bench::Pct(seeded_pad.ledger.SlaViolationRate(), 2),
                  bench::Pct(seeded_pad.ledger.RevenueLossRate(), 2)});
  }
  seeds.AddRow({"spread", bench::Pct(savings_samples.max() - savings_samples.min(), 2), "-",
                "-"});
  seeds.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "prefetch_savings");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 300), json);
  return json.Flush() ? 0 : 1;
}
