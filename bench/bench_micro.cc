// E12 — Engineering microbenchmarks (google-benchmark): throughput of the
// pieces that bound simulation scale, plus the exact-vs-approximate planner
// tail ablation called out in DESIGN.md §6.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/apps/workload.h"
#include "src/auction/exchange.h"
#include "src/common/rng.h"
#include "src/core/pad_simulation.h"
#include "src/overbook/poisson_binomial.h"
#include "src/overbook/replication_planner.h"
#include "src/radio/machine.h"
#include "src/sim/simulator.h"
#include "src/trace/generator.h"

namespace pad {
namespace {

void BM_RngNextDouble(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDouble());
  }
}
BENCHMARK(BM_RngNextDouble);

void BM_RngPoisson(benchmark::State& state) {
  Rng rng(1);
  const double mean = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Poisson(mean));
  }
}
BENCHMARK(BM_RngPoisson)->Arg(3)->Arg(100);

void BM_RadioMachineSubmit(benchmark::State& state) {
  const RadioProfile profile = ThreeGProfile();
  RadioMachine machine(profile);
  double t = 0.0;
  for (auto _ : state) {
    machine.Submit(Transfer{t, 3072.0, Direction::kDownlink, TrafficCategory::kAdFetch});
    t += 30.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RadioMachineSubmit);

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(static_cast<double>(i % 100), [] {});
    }
    sim.RunAll();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_PoissonBinomialTail(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) {
    probs.push_back(rng.Uniform(0.1, 0.9));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonBinomialTailGeq(probs, n / 2));
  }
}
BENCHMARK(BM_PoissonBinomialTail)->Arg(8)->Arg(32)->Arg(128);

void BM_PoissonBinomialTailNormal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) {
    probs.push_back(rng.Uniform(0.1, 0.9));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonBinomialTailGeqNormal(probs, n / 2));
  }
}
BENCHMARK(BM_PoissonBinomialTailNormal)->Arg(8)->Arg(32)->Arg(128);

void BM_PlannerPlanToTarget(benchmark::State& state) {
  PlannerConfig config;
  config.sla_target = 0.95;
  config.max_replicas = 8;
  ReplicationPlanner planner(config);
  Rng rng(3);
  std::vector<double> probs;
  for (int i = 0; i < 32; ++i) {
    probs.push_back(rng.Uniform(0.2, 0.95));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.PlanToTarget(probs, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlannerPlanToTarget);

void BM_ExchangeSellSlots(benchmark::State& state) {
  CampaignStreamConfig config;
  config.horizon_s = 365.0 * kDay;
  config.arrivals_per_day = 500.0;
  const std::vector<Campaign> campaigns = GenerateCampaignStream(config);
  Exchange exchange(ExchangeConfig{}, campaigns);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exchange.SellSlots(t, 10));
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_ExchangeSellSlots);

void BM_TraceGeneration(benchmark::State& state) {
  PopulationConfig config;
  config.num_users = static_cast<int>(state.range(0));
  config.horizon_s = 14.0 * kDay;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GeneratePopulation(config));
  }
}
BENCHMARK(BM_TraceGeneration)->Arg(10)->Arg(100);

void BM_WorkloadExpansion(benchmark::State& state) {
  const AppCatalog catalog = AppCatalog::TopFifteen();
  PopulationConfig config;
  config.num_users = 50;
  config.horizon_s = 14.0 * kDay;
  config.num_apps = catalog.size();
  const Population population = GeneratePopulation(config);
  WorkloadOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpandPopulation(catalog, population, options));
  }
}
BENCHMARK(BM_WorkloadExpansion);

void BM_EndToEndQuickRun(benchmark::State& state) {
  PadConfig config = QuickConfig();
  config.population.num_users = 20;
  const SimInputs inputs = GenerateInputs(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPad(config, inputs));
  }
}
BENCHMARK(BM_EndToEndQuickRun)->Unit(benchmark::kMillisecond);

// Console reporter that also collects each benchmark's per-iteration real
// time into BenchRow JSON when `--json <path>` is given, so the micro suite
// feeds the same bench_compare gate as the end-to-end harnesses.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  explicit JsonCollector(bench::BenchJson* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration || run.iterations <= 0) {
        continue;
      }
      const double ns_per_iter =
          1e9 * run.real_accumulated_time / static_cast<double>(run.iterations);
      json_->Add(run.benchmark_name(), ns_per_iter, "ns/iter", "");
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  bench::BenchJson* json_;
};

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "micro");
  // Hide --json from google-benchmark's flag parser.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  pad::JsonCollector reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return json.Flush() ? 0 : 1;
}
