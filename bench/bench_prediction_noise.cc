// E11 — Robustness to prediction error: the abstract calls the client
// estimate "unreliable" and claims overbooking absorbs it. A noisy oracle
// injects controlled multiplicative error (the predictor *reports* its own
// noise variance, so the overbooking model can price the risk), sweeping
// from perfect foresight to wildly wrong.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users, const SweepOptions& sweep, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(num_users);
  config.use_noisy_oracle = true;
  const SimInputs inputs = GenerateInputs(config);
  const BaselineResult baseline = RunBaseline(config, inputs);

  PrintBanner(std::cout, "E11: noisy-oracle sigma sweep (lognormal, mean-preserving)");
  const std::vector<double> sigmas = {0.0, 0.25, 0.5, 0.75, 1.0, 1.5};
  std::vector<PadConfig> points;
  for (double sigma : sigmas) {
    PadConfig point = config;
    point.oracle_noise_sigma = sigma;
    points.push_back(point);
  }
  TextTable table(bench::MetricsHeader("noise_sigma"));
  const std::vector<PadRunResult> runs = RunPadMany(points, inputs, sweep);
  for (size_t i = 0; i < sigmas.size(); ++i) {
    table.AddRow(bench::MetricsRow(FormatDouble(sigmas[i], 2), baseline, runs[i]));
    json.AddComparison("users=" + std::to_string(num_users) + " noise_sigma=" +
                           FormatDouble(sigmas[i], 2),
                       Comparison{baseline, runs[i]});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "E11: trained predictor for reference (time_of_day)");
  TextTable reference(bench::MetricsHeader("predictor"));
  PadConfig trained = config;
  trained.use_noisy_oracle = false;
  reference.AddRow(bench::MetricsRow("time_of_day", baseline, RunPad(trained, inputs)));
  reference.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "prediction_noise");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250), pad::bench::SweepOptionsFromArgv(argc, argv),
           json);
  return json.Flush() ? 0 : 1;
}
