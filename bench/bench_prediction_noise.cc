// E11 — Robustness to prediction error: the abstract calls the client
// estimate "unreliable" and claims overbooking absorbs it. A noisy oracle
// injects controlled multiplicative error (the predictor *reports* its own
// noise variance, so the overbooking model can price the risk), sweeping
// from perfect foresight to wildly wrong.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users) {
  PadConfig config = bench::StandardConfig(num_users);
  config.use_noisy_oracle = true;
  const SimInputs inputs = GenerateInputs(config);
  const BaselineResult baseline = RunBaseline(config, inputs);

  PrintBanner(std::cout, "E11: noisy-oracle sigma sweep (lognormal, mean-preserving)");
  TextTable table(bench::MetricsHeader("noise_sigma"));
  for (double sigma : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5}) {
    PadConfig point = config;
    point.oracle_noise_sigma = sigma;
    table.AddRow(bench::MetricsRow(FormatDouble(sigma, 2), baseline, RunPad(point, inputs)));
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "E11: trained predictor for reference (time_of_day)");
  TextTable reference(bench::MetricsHeader("predictor"));
  PadConfig trained = config;
  trained.use_noisy_oracle = false;
  reference.AddRow(bench::MetricsRow("time_of_day", baseline, RunPad(trained, inputs)));
  reference.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250));
  return 0;
}
