// E6 — Overbooking: SLA violation rate and revenue loss as the replication
// policy sweeps from no insurance to heavy overbooking. Reproduces the
// paper's central tradeoff: replicas buy deadline safety with duplicate
// (unbillable) displays, and a modest factor suffices.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users, const SweepOptions& sweep, bench::BenchJson& json) {
  const std::string label = "users=" + std::to_string(num_users);
  PadConfig config = bench::StandardConfig(num_users);
  config.planner.max_replicas = 8;
  const SimInputs inputs = GenerateInputs(config);
  const BaselineResult baseline = RunBaseline(config, inputs);

  PrintBanner(std::cout,
              "E6: fixed overbooking factor sweep (target expected displays per sale)");
  const std::vector<double> factors = {0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0};
  std::vector<PadConfig> factor_points;
  for (double factor : factors) {
    PadConfig point = config;
    point.overbooking_factor = factor;
    factor_points.push_back(point);
  }
  TextTable table(bench::MetricsHeader("factor"));
  const std::vector<PadRunResult> factor_runs = RunPadMany(factor_points, inputs, sweep);
  for (size_t i = 0; i < factors.size(); ++i) {
    table.AddRow(bench::MetricsRow(FormatDouble(factors[i], 2), baseline, factor_runs[i]));
    json.AddComparison(label + " factor=" + FormatDouble(factors[i], 2),
                       Comparison{baseline, factor_runs[i]});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "E6: adaptive planner (PlanToTarget) across SLA targets");
  const std::vector<double> targets = {0.80, 0.90, 0.95, 0.99};
  std::vector<PadConfig> target_points;
  for (double target : targets) {
    PadConfig point = config;
    point.overbooking_factor = -1.0;  // Adaptive mode.
    point.planner.sla_target = target;
    target_points.push_back(point);
  }
  TextTable adaptive(bench::MetricsHeader("sla_target"));
  const std::vector<PadRunResult> target_runs = RunPadMany(target_points, inputs, sweep);
  for (size_t i = 0; i < targets.size(); ++i) {
    adaptive.AddRow(bench::MetricsRow(FormatDouble(targets[i], 2), baseline, target_runs[i]));
    json.AddComparison(label + " sla_target=" + FormatDouble(targets[i], 2),
                       Comparison{baseline, target_runs[i]});
  }
  adaptive.Print(std::cout);

  PrintBanner(std::cout, "E6: ablation — invalidation sync and rescue pass");
  std::vector<PadConfig> ablation_points(3, config);
  ablation_points[1].rescue_enabled = false;
  ablation_points[2].invalidation_sync = false;
  ablation_points[2].rescue_enabled = false;
  TextTable ablation(bench::MetricsHeader("mechanism"));
  const std::vector<PadRunResult> ablation_runs = RunPadMany(ablation_points, inputs, sweep);
  ablation.AddRow(bench::MetricsRow("full system", baseline, ablation_runs[0]));
  ablation.AddRow(bench::MetricsRow("no rescue pass", baseline, ablation_runs[1]));
  ablation.AddRow(bench::MetricsRow("no sync, no rescue", baseline, ablation_runs[2]));
  ablation.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "overbooking");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250), pad::bench::SweepOptionsFromArgv(argc, argv),
           json);
  return json.Flush() ? 0 : 1;
}
