// E6 — Overbooking: SLA violation rate and revenue loss as the replication
// policy sweeps from no insurance to heavy overbooking. Reproduces the
// paper's central tradeoff: replicas buy deadline safety with duplicate
// (unbillable) displays, and a modest factor suffices.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users) {
  PadConfig config = bench::StandardConfig(num_users);
  config.planner.max_replicas = 8;
  const SimInputs inputs = GenerateInputs(config);
  const BaselineResult baseline = RunBaseline(config, inputs);

  PrintBanner(std::cout,
              "E6: fixed overbooking factor sweep (target expected displays per sale)");
  TextTable table(bench::MetricsHeader("factor"));
  for (double factor : {0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0}) {
    PadConfig point = config;
    point.overbooking_factor = factor;
    const PadRunResult result = RunPad(point, inputs);
    table.AddRow(bench::MetricsRow(FormatDouble(factor, 2), baseline, result));
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "E6: adaptive planner (PlanToTarget) across SLA targets");
  TextTable adaptive(bench::MetricsHeader("sla_target"));
  for (double target : {0.80, 0.90, 0.95, 0.99}) {
    PadConfig point = config;
    point.overbooking_factor = -1.0;  // Adaptive mode.
    point.planner.sla_target = target;
    const PadRunResult result = RunPad(point, inputs);
    adaptive.AddRow(bench::MetricsRow(FormatDouble(target, 2), baseline, result));
  }
  adaptive.Print(std::cout);

  PrintBanner(std::cout, "E6: ablation — invalidation sync and rescue pass");
  TextTable ablation(bench::MetricsHeader("mechanism"));
  {
    const PadRunResult all_on = RunPad(config, inputs);
    ablation.AddRow(bench::MetricsRow("full system", baseline, all_on));
  }
  {
    PadConfig point = config;
    point.rescue_enabled = false;
    ablation.AddRow(bench::MetricsRow("no rescue pass", baseline, RunPad(point, inputs)));
  }
  {
    PadConfig point = config;
    point.invalidation_sync = false;
    point.rescue_enabled = false;
    ablation.AddRow(bench::MetricsRow("no sync, no rescue", baseline, RunPad(point, inputs)));
  }
  ablation.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250));
  return 0;
}
