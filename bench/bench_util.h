// Shared setup for the experiment-regeneration harnesses (bench_*).
//
// Every harness prints the rows/series of one table or figure from the
// paper's evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured). Populations are scaled down from
// the paper's 1,700 users so the full suite runs in minutes; pass a user
// count as argv[1] to run any harness at full scale, and `--threads N` to
// fan the sweep's independent runs across N threads (results are
// bit-identical for any N — see src/core/sweep.h).
#ifndef ADPAD_BENCH_BENCH_UTIL_H_
#define ADPAD_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/common/bench_baseline.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/core/pad_simulation.h"
#include "src/core/sweep.h"

namespace pad {
namespace bench {

// The standard evaluation config: 3 trace weeks (1 warmup + 2 scored).
inline PadConfig StandardConfig(int num_users) {
  PadConfig config;
  config.population.num_users = num_users;
  config.population.horizon_s = 21.0 * kDay;
  config.warmup_days = 7;
  // Demand scales with supply so the market never starves the comparison.
  config.campaigns.arrivals_per_day = std::max(50.0, 1.5 * num_users);
  return config;
}

inline int UsersFromArgv(int argc, char** argv, int default_users) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (std::strchr(argv[i], '=') == nullptr) {
        ++i;  // Space-separated flag: skip its value too.
      }
      continue;
    }
    const int users = std::atoi(argv[i]);
    if (users > 0) {
      return users;
    }
  }
  return default_users;
}

// `--threads N` (or `--threads=N`): concurrency of the sweep fan-out.
// Defaults to 1 (serial); 0 asks the hardware.
inline SweepOptions SweepOptionsFromArgv(int argc, char** argv) {
  SweepOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      options.threads = std::atoi(argv[i] + 10);
    }
  }
  return options;
}

inline std::string Pct(double fraction, int precision = 1) {
  return FormatDouble(100.0 * fraction, precision) + "%";
}

// Machine-readable output: `--json <path>` makes the harness also write its
// results as BenchRow JSON (src/common/bench_baseline.h). Collect rows while
// printing the human tables, then Flush() before exiting. Flush is also run
// by the destructor so early returns still write the file.
class BenchJson {
 public:
  BenchJson(int argc, char** argv, std::string bench) : bench_(std::move(bench)) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        path_ = argv[i + 1];
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        path_ = argv[i] + 7;
      }
    }
  }
  ~BenchJson() { Flush(); }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& metric, double value, const std::string& unit,
           const std::string& config) {
    rows_.push_back(BenchRow{bench_, metric, value, unit, config});
  }

  // The standard comparison metrics every end-to-end harness reports.
  void AddComparison(const std::string& config, const Comparison& comparison) {
    Add("ad_energy_savings", comparison.AdEnergySavings(), "fraction", config);
    Add("cache_hit_rate", comparison.pad.service.CacheHitRate(), "fraction", config);
    Add("sla_violation_rate", comparison.pad.ledger.SlaViolationRate(), "fraction", config);
    Add("revenue_loss_rate", comparison.pad.ledger.RevenueLossRate(), "fraction", config);
    Add("mean_replication", comparison.pad.MeanReplication(), "replicas", config);
    Add("revenue_ratio", comparison.RevenueRatio(), "fraction", config);
  }

  // Writes the collected rows if --json was given. Returns false (after
  // printing the error) only on IO failure.
  bool Flush() {
    if (path_.empty() || flushed_) {
      return true;
    }
    flushed_ = true;
    std::string error;
    if (!SaveBenchRows(path_, rows_, &error)) {
      std::cerr << "bench --json: " << error << "\n";
      return false;
    }
    std::cout << "wrote " << rows_.size() << " bench rows to " << path_ << "\n";
    return true;
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<BenchRow> rows_;
  bool flushed_ = false;
};

// Summary row shared by the end-to-end sweeps.
inline std::vector<std::string> MetricsRow(const std::string& label,
                                           const BaselineResult& baseline,
                                           const PadRunResult& pad) {
  Comparison comparison{baseline, pad};
  return {label,
          Pct(comparison.AdEnergySavings()),
          Pct(pad.service.CacheHitRate()),
          Pct(pad.ledger.SlaViolationRate(), 2),
          Pct(pad.ledger.RevenueLossRate(), 2),
          FormatDouble(pad.MeanReplication(), 2),
          Pct(comparison.RevenueRatio())};
}

inline std::vector<std::string> MetricsHeader(const std::string& knob) {
  return {knob,       "ad_energy_savings", "cache_hit", "sla_violation",
          "rev_loss", "replication",       "revenue_vs_baseline"};
}

}  // namespace bench
}  // namespace pad

#endif  // ADPAD_BENCH_BENCH_UTIL_H_
