// E22 — Multi-process scaling: the same market queue executed by forked
// worker processes (src/core/multiproc_engine.h) at 1 worker and at 8, with
// the win reported as *makespan speedup*: per-worker sums of the thread-CPU
// cost of each market (ShardedComparison::market_busy_s), speedup =
// makespan(p=1) / makespan(p=8). As in E19, thread-CPU makespan is what
// wall clock becomes on a machine with enough cores, and it stays faithful
// on the oversubscribed or single-core boxes CI runs on, where the wall
// clock of an 8-process run measures the OS scheduler instead of the
// coordinator. Wall times are reported but never gated.
//
// The two runs must agree digest-for-digest — the bench doubles as an
// end-to-end check of the exactly-once handoff and exits non-zero on a
// mismatch, as it does when `--min_speedup` (the CI acceptance gate, >= 3x
// at 8 workers) is not met.
//
// Peak memory is reported as `max_rss_mib`: the coordinator's own peak RSS
// maxed with the largest worker's (getrusage RUSAGE_CHILDREN after every
// worker is reaped) — the per-process residency cap is the reason to shard
// across processes at all, so the bench tracks it next to throughput. It is
// an ignored key in the bench_compare gate: informative, box-dependent.
//
// The checked-in BENCH_multiproc_scale.json baseline comes from:
//
//   $ bench_multiproc_scale --json BENCH_multiproc_scale.json
//
// which runs the full-scale acceptance row and the CI-sized row that
// perf-smoke regenerates on every push (--ci_only).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/core/multiproc_engine.h"
#include "src/core/shard_engine.h"

namespace pad {
namespace {

struct MpBenchCase {
  std::string name;
  int64_t users = 0;
  int64_t market_users = 0;
  int processes = 8;
};

struct MpBenchOptions {
  bool ci_only = false;      // --ci_only: just the CI-sized row.
  double min_speedup = 0.0;  // --min_speedup: fail below this makespan win.
};

MpBenchOptions OptionsFromArgv(int argc, char** argv) {
  MpBenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci_only") == 0) {
      options.ci_only = true;
    } else if (std::strcmp(argv[i], "--min_speedup") == 0 && i + 1 < argc) {
      options.min_speedup = std::atof(argv[i + 1]);
    }
  }
  return options;
}

// Peak RSS in MiB across this process and the largest reaped worker
// (ru_maxrss is KiB on Linux).
double MaxRssMib() {
  struct rusage self {};
  struct rusage children {};
  getrusage(RUSAGE_SELF, &self);
  getrusage(RUSAGE_CHILDREN, &children);
  return static_cast<double>(std::max(self.ru_maxrss, children.ru_maxrss)) / 1024.0;
}

struct EngineRun {
  ShardedComparison result;
  double wall_s = 0.0;
  double makespan_s = 0.0;  // max over workers of sum(market_busy_s).
  double total_busy_s = 0.0;
};

EngineRun RunAtProcessCount(const PadConfig& config, int processes,
                            const std::string& journal) {
  // A leftover journal would replay markets instead of simulating them and
  // fake the timing; every measured run starts from a clean file.
  std::remove(journal.c_str());
  MultiprocEngineOptions options;
  options.processes = processes;
  options.engine.event_digests = false;
  options.engine.checkpoint_path = journal;
  PAD_CHECK(ValidateMultiprocOptions(config, options).empty());

  EngineRun run;
  const auto start = std::chrono::steady_clock::now();
  StatusOr<ShardedComparison> result = RunMultiprocSharded(config, options);
  run.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  PAD_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  run.result = *std::move(result);
  PAD_CHECK(run.result.resumed_markets == 0);
  std::remove(journal.c_str());

  std::vector<double> worker_busy(static_cast<size_t>(run.result.worker_processes), 0.0);
  for (int m = 0; m < run.result.num_markets; ++m) {
    const int worker = run.result.market_workers[static_cast<size_t>(m)];
    PAD_CHECK(worker >= 0 && worker < run.result.worker_processes);
    worker_busy[static_cast<size_t>(worker)] +=
        run.result.market_busy_s[static_cast<size_t>(m)];
  }
  for (double busy : worker_busy) {
    run.makespan_s = std::max(run.makespan_s, busy);
    run.total_busy_s += busy;
  }
  return run;
}

int RunCase(const MpBenchCase& bench_case, double min_speedup, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(static_cast<int>(bench_case.users));
  config.population.horizon_s = 9.0 * kDay;  // 7 warmup + 2 scored.
  config.market_users = bench_case.market_users;

  const std::string label = "users=" + std::to_string(bench_case.users) +
                            " market_users=" + std::to_string(bench_case.market_users) +
                            " processes=" + std::to_string(bench_case.processes);
  PrintBanner(std::cout,
              "E22: multi-process scaling (" + bench_case.name + ": " + label + ")");

  const char* tmpdir = std::getenv("TMPDIR");
  const std::string journal = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                              "/bench_multiproc_scale_" + bench_case.name + ".ckpt";
  const EngineRun single = RunAtProcessCount(config, 1, journal);
  const EngineRun pool = RunAtProcessCount(config, bench_case.processes, journal);

  // The process count is execution-only: a digest divergence here is an
  // exactly-once bug in the handoff, not a perf regression.
  if (single.result.combined_pad_digest != pool.result.combined_pad_digest ||
      single.result.combined_baseline_digest != pool.result.combined_baseline_digest) {
    std::cerr << "bench_multiproc_scale: 1-process and " << bench_case.processes
              << "-process runs diverged\n";
    return 1;
  }
  if (single.result.workers_died != 0 || pool.result.workers_died != 0) {
    std::cerr << "bench_multiproc_scale: workers died during a clean bench run\n";
    return 1;
  }

  const double speedup = pool.makespan_s > 0.0 ? single.makespan_s / pool.makespan_s : 0.0;
  const double users_per_sec = static_cast<double>(pool.result.total_users) / pool.wall_s;
  const double rss_mib = MaxRssMib();

  TextTable table({"metric", "1 process", std::to_string(bench_case.processes) + " processes"});
  table.AddRow({"makespan (thread-CPU)", FormatDouble(single.makespan_s, 2) + " s",
                FormatDouble(pool.makespan_s, 2) + " s"});
  table.AddRow({"total busy", FormatDouble(single.total_busy_s, 2) + " s",
                FormatDouble(pool.total_busy_s, 2) + " s"});
  table.AddRow({"wall (this box)", FormatDouble(single.wall_s, 2) + " s",
                FormatDouble(pool.wall_s, 2) + " s"});
  table.AddRow({"workers used", std::to_string(single.result.workers_used),
                std::to_string(pool.result.workers_used)});
  table.AddRow({"markets reassigned", std::to_string(single.result.markets_reassigned),
                std::to_string(pool.result.markets_reassigned)});
  table.Print(std::cout);
  std::cout << "mp_speedup (1-process makespan / " << bench_case.processes
            << "-process makespan): " << FormatDouble(speedup, 2) << "x\n"
            << "max_rss_mib (coordinator or largest worker): " << FormatDouble(rss_mib, 1)
            << " MiB\n";

  // Deterministic rows (tight tolerance in the gate) ...
  json.AddComparison(label, pool.result.totals);
  json.Add("sessions", static_cast<double>(pool.result.total_sessions), "count", label);
  // ... the makespan rows (thread-CPU, stable enough for a wide-tolerance
  // gate) ...
  json.Add("mp_makespan_1p_s", single.makespan_s, "s", label);
  json.Add("mp_makespan_np_s", pool.makespan_s, "s", label);
  json.Add("mp_speedup", speedup, "ratio", label);
  // ... and the box-dependent rows, ignored in CI.
  json.Add("users_per_sec", users_per_sec, "users/s", label);
  json.Add("wall_1p_s", single.wall_s, "s", label);
  json.Add("wall_np_s", pool.wall_s, "s", label);
  json.Add("max_rss_mib", rss_mib, "MiB", label);

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "bench_multiproc_scale: mp_speedup " << FormatDouble(speedup, 2)
              << " below required " << FormatDouble(min_speedup, 2) << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  const pad::MpBenchOptions options = pad::OptionsFromArgv(argc, argv);
  pad::bench::BenchJson json(argc, argv, "multiproc_scale");

  std::vector<pad::MpBenchCase> cases;
  if (!options.ci_only) {
    // Acceptance scale: 32 markets over 8 workers — enough queue depth that
    // the coordinator's first-fit assignment keeps every worker busy.
    pad::MpBenchCase full;
    full.name = "full";
    full.users = 3200;
    full.market_users = 100;
    cases.push_back(full);
  }
  // CI scale: same shape (32 markets, 8 workers), an eighth the users.
  pad::MpBenchCase ci;
  ci.name = "ci";
  ci.users = 640;
  ci.market_users = 20;
  cases.push_back(ci);

  for (const pad::MpBenchCase& bench_case : cases) {
    const int status = pad::RunCase(bench_case, options.min_speedup, json);
    if (status != 0) {
      return status;
    }
  }
  return json.Flush() ? 0 : 1;
}
