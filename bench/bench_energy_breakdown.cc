// E1 — The measurement study (paper §2): per-app energy breakdown of the
// top-15 free apps on 3G, and the two headline aggregates:
//   * ads ~= 65% of an app's communication energy,
//   * ads ~= 23% of an app's total energy.
#include "bench/bench_util.h"

#include "src/apps/workload.h"
#include "src/radio/machine.h"
#include "src/trace/generator.h"

namespace pad {
namespace {

struct AppEnergy {
  EnergyReport radio;
  double local_j = 0.0;
  double foreground_h = 0.0;
};

void Run(int num_users, bench::BenchJson& json) {
  const AppCatalog catalog = AppCatalog::TopFifteen();
  PopulationConfig population_config;
  population_config.num_users = num_users;
  population_config.horizon_s = 14.0 * kDay;
  population_config.num_apps = catalog.size();
  const Population population = GeneratePopulation(population_config);

  // Per-app accounting mirrors the paper's method: each app instrumented on
  // its own (a session's radio cool-down belongs to the app that ran).
  std::vector<AppEnergy> per_app(static_cast<size_t>(catalog.size()));
  const RadioProfile radio = ThreeGProfile();
  WorkloadOptions options;  // On-demand ads + app content.
  for (const UserTrace& user : population.users) {
    for (int app_id = 0; app_id < catalog.size(); ++app_id) {
      UserTrace only_this_app;
      only_this_app.user_id = user.user_id;
      for (const Session& session : user.sessions) {
        if (session.app_id == app_id) {
          only_this_app.sessions.push_back(session);
        }
      }
      if (only_this_app.sessions.empty()) {
        continue;
      }
      const UserWorkload workload = ExpandUser(catalog, only_this_app, options);
      AppEnergy& bucket = per_app[static_cast<size_t>(app_id)];
      bucket.radio.Merge(SimulateTransfers(radio, workload.transfers, population.horizon_s));
      bucket.local_j += workload.local_energy_j;
      bucket.foreground_h += workload.foreground_s / kHour;
    }
  }

  PrintBanner(std::cout, "E1: per-app energy breakdown (3G, " +
                             std::to_string(num_users) + " users, 2 weeks)");
  TextTable table({"app", "genre", "fg_hours", "ad_j", "content_j", "local_j",
                   "ad_share_comm", "ad_share_total"});
  EnergyBreakdown aggregate;
  for (int app_id = 0; app_id < catalog.size(); ++app_id) {
    const AppProfile& app = catalog.Get(app_id);
    const AppEnergy& bucket = per_app[static_cast<size_t>(app_id)];
    EnergyBreakdown breakdown;
    breakdown.radio = bucket.radio;
    breakdown.local_j = bucket.local_j;
    aggregate.radio.Merge(bucket.radio);
    aggregate.local_j += bucket.local_j;
    table.AddRow({app.name, app.genre, FormatDouble(bucket.foreground_h, 0),
                  FormatDouble(breakdown.AdEnergyJ(), 0),
                  FormatDouble(breakdown.radio.For(TrafficCategory::kAppContent).total_j(), 0),
                  FormatDouble(breakdown.local_j, 0), bench::Pct(breakdown.AdShareOfComm()),
                  bench::Pct(breakdown.AdShareOfTotal())});
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "E1: aggregates (paper: 65% of communication, 23% of total)");
  TextTable summary({"metric", "measured", "paper"});
  summary.AddRow({"ads / communication energy", bench::Pct(aggregate.AdShareOfComm()), "65%"});
  summary.AddRow({"ads / total app energy", bench::Pct(aggregate.AdShareOfTotal()), "23%"});
  summary.Print(std::cout);

  const std::string label = "users=" + std::to_string(num_users) + " radio=3g";
  json.Add("ad_share_comm", aggregate.AdShareOfComm(), "fraction", label);
  json.Add("ad_share_total", aggregate.AdShareOfTotal(), "fraction", label);
  json.Add("ad_energy_j", aggregate.AdEnergyJ(), "J", label);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "energy_breakdown");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 300), json);
  return json.Flush() ? 0 : 1;
}
