// E20 — Per-user hot-path throughput, digest-locked.
//
// Runs one paired baseline/PAD comparison through the streaming shard engine
// at a fixed CI-sized population and reports wall-clock throughput
// (users/s) plus the combined metric and event-log digests, split into
// exactly-representable uint32 halves so `tools/bench_compare` can gate them
// at zero tolerance. That makes the perf gate double as a correctness gate:
// an "optimization" that drifts a single metric bit or reorders one event
// fails the digest rows before anyone has to squint at throughput noise.
//
//   $ bench_hot_path --json BENCH_hot_path.json
//   $ bench_hot_path --users 20000 --market_users 2000 --threads 2
//
// The default scale (2000 users, 9 days, 500-user markets) matches the CI
// perf-smoke row of bench_population_scale, small enough to finish in
// seconds on one core.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/core/shard_engine.h"

namespace pad {
namespace {

struct HotPathOptions {
  int64_t users = 2000;
  int64_t market_users = 500;
  int threads = 1;
  double days = 9.0;  // 7 warmup + 2 scored.
  int repeats = 1;    // Throughput reported from the fastest repeat.
};

HotPathOptions OptionsFromArgv(int argc, char** argv) {
  HotPathOptions options;
  for (int i = 1; i < argc; ++i) {
    auto int_flag = [&](const char* name, int64_t* out) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = std::atoll(argv[i + 1]);
      }
    };
    int_flag("--users", &options.users);
    int_flag("--market_users", &options.market_users);
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.threads = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      options.days = std::atof(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--repeats") == 0 && i + 1 < argc) {
      options.repeats = std::atoi(argv[i + 1]);
    }
  }
  return options;
}

// Digest halves as doubles: every uint32 is exactly representable, so the
// JSON round-trip and the compare are bit-precise.
double Hi(uint64_t digest) { return static_cast<double>(digest >> 32); }
double Lo(uint64_t digest) { return static_cast<double>(digest & 0xffffffffull); }

int Run(const HotPathOptions& hot, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(static_cast<int>(hot.users));
  config.population.horizon_s = hot.days * kDay;
  config.market_users = hot.market_users;

  ShardEngineOptions options;
  options.threads = hot.threads;
  options.event_digests = true;
  if (const std::string error = ValidateShardOptions(config, options); !error.empty()) {
    std::cerr << "bench_hot_path: " << error << "\n";
    return 1;
  }

  const std::string label = "users=" + std::to_string(hot.users) +
                            " days=" + FormatDouble(hot.days, 0) +
                            " market_users=" + std::to_string(hot.market_users);
  PrintBanner(std::cout, "E20: per-user hot path, digest-locked (" + label + ")");

  double best_wall_s = 0.0;
  ShardedComparison result;
  for (int r = 0; r < std::max(1, hot.repeats); ++r) {
    const auto start = std::chrono::steady_clock::now();
    ShardedComparison run = RunShardedComparison(config, options);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (r > 0 && (run.combined_pad_digest != result.combined_pad_digest ||
                  run.combined_event_digest != result.combined_event_digest)) {
      std::cerr << "bench_hot_path: repeat " << r << " diverged from repeat 0\n";
      return 1;
    }
    if (r == 0 || wall_s < best_wall_s) {
      best_wall_s = wall_s;
    }
    result = std::move(run);
  }
  const double users_per_s = static_cast<double>(result.total_users) / best_wall_s;

  TextTable table({"metric", "value"});
  table.AddRow({"users", std::to_string(result.total_users)});
  table.AddRow({"sessions", std::to_string(result.total_sessions)});
  table.AddRow({"wall time", FormatDouble(best_wall_s, 2) + " s"});
  table.AddRow({"throughput", FormatDouble(users_per_s, 1) + " users/s"});
  table.AddRow({"pad digest", FormatDouble(Hi(result.combined_pad_digest), 0) + " / " +
                                  FormatDouble(Lo(result.combined_pad_digest), 0)});
  table.AddRow({"event digest", FormatDouble(Hi(result.combined_event_digest), 0) + " / " +
                                    FormatDouble(Lo(result.combined_event_digest), 0)});
  table.Print(std::cout);

  json.Add("users_per_sec", users_per_s, "users/s", label);
  json.Add("sessions", static_cast<double>(result.total_sessions), "count", label);
  json.Add("pad_digest_hi", Hi(result.combined_pad_digest), "u32", label);
  json.Add("pad_digest_lo", Lo(result.combined_pad_digest), "u32", label);
  json.Add("baseline_digest_hi", Hi(result.combined_baseline_digest), "u32", label);
  json.Add("baseline_digest_lo", Lo(result.combined_baseline_digest), "u32", label);
  json.Add("event_digest_hi", Hi(result.combined_event_digest), "u32", label);
  json.Add("event_digest_lo", Lo(result.combined_event_digest), "u32", label);
  return 0;
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  const pad::HotPathOptions options = pad::OptionsFromArgv(argc, argv);
  pad::bench::BenchJson json(argc, argv, "hot_path");
  const int status = pad::Run(options, json);
  if (status != 0) {
    return status;
  }
  return json.Flush() ? 0 : 1;
}
