// E23 — Serving under deterministic network chaos: latency, goodput, and
// zero corruption across fault rates.
//
// Boots the hardened front end (src/serve) on loopback and drives it with
// the closed-loop load generator three times, at chaos rates {0, 0.05, 0.2}.
// Each level injects the same fault mix from the same seeds:
//   * server side (outcome-preserving): split response writes, dribbled
//     request reads, parked-read stalls — the decision bytes must not move;
//   * client side (outcome-changing): refused connects and request frames
//     cut mid-send, which force the retry/backoff/reconnect machinery to
//     re-earn every response.
//
// The chaos schedule is a pure function of (seed, connection, event index)
// (src/serve/chaos.h), so the rows that describe *what happened* — response
// counts, retries, reconnects, cuts, refused connects, and the decision
// digest — are bit-deterministic and gated by tools/bench_compare at zero
// tolerance. Latency quantiles, QPS, and goodput are wall-clock facts and
// are reported for humans, not gated.
//
// The bench itself enforces the contracts that make those rows meaningful:
//   * every request is eventually answered at every chaos level (the retry
//     budget absorbs the plan's faults; abandoned == 0);
//   * per reconnect segment, the answered responses replay exactly against
//     DecideBatch (no server-side corruption under torn tails and retries).
//     This replay, not cross-level digest equality, is the integrity proof:
//     a reconnect legitimately starts a fresh sale session
//     (session_adapter.h), so where chaos cuts the stream changes which
//     session state each request sees — the per-level digest pins *that
//     level's* exact decision bytes, and bench_compare holds each one at
//     zero tolerance against the checked-in baseline;
//   * degradation is monotone: a higher fault rate induces at least as many
//     cuts, refused connects, and retries (decision-set nesting, chaos.h).
//
//   $ bench_serving_chaos --json BENCH_serving_chaos.json
//   $ bench_serving_chaos 1024 --connections 8 --requests 400
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/ad_server.h"
#include "src/serve/latency_histogram.h"
#include "src/serve/load_gen.h"
#include "src/serve/session_adapter.h"

namespace pad {
namespace {

struct ChaosBenchOptions {
  int users = 256;
  int connections = 6;
  int requests = 150;
  uint64_t seed = 424242;
};

ChaosBenchOptions OptionsFromArgv(int argc, char** argv) {
  ChaosBenchOptions options;
  options.users = bench::UsersFromArgv(argc, argv, options.users);
  for (int i = 1; i < argc; ++i) {
    auto int_flag = [&](const char* name, int* out) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        *out = std::atoi(argv[i + 1]);
      }
    };
    int_flag("--connections", &options.connections);
    int_flag("--requests", &options.requests);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    }
  }
  return options;
}

// Fixed schedule seeds: the same seeds at every rate, so the decision sets
// nest across levels and degradation is monotone by construction.
constexpr uint64_t kServerChaosSeed = 4242;
constexpr uint64_t kClientChaosSeed = 7777;

struct LevelResult {
  std::string name;
  double rate = 0.0;
  LoadGenReport report;
  uint64_t digest = 0;
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double goodput_rps = 0.0;
};

uint64_t Fnv1a(const std::string& bytes, uint64_t hash) {
  for (const char byte : bytes) {
    hash ^= static_cast<uint8_t>(byte);
    hash *= 1099511628211ull;
  }
  return hash;
}

double Hi(uint64_t digest) { return static_cast<double>(digest >> 32); }
double Lo(uint64_t digest) { return static_cast<double>(digest & 0xffffffffull); }

// Replays every reconnect segment of every connection against DecideBatch:
// the server must have decided exactly the answered requests of that
// segment, in order, byte for byte. Returns false (and complains) on the
// first corrupted payload.
bool VerifySegments(const DecisionEngine& engine, const LoadGenOptions& load,
                    const LoadGenReport& report) {
  for (size_t c = 0; c < report.captured_frames.size(); ++c) {
    const std::vector<WireRequest> plan = BuildRequestPlan(load, static_cast<int>(c));
    const auto& frames = report.captured_frames[c];
    size_t i = 0;
    while (i < frames.size()) {
      const int32_t segment = frames[i].segment;
      std::vector<WireRequest> asked;
      size_t first = i;
      while (i < frames.size() && frames[i].segment == segment) {
        asked.push_back(plan[static_cast<size_t>(frames[i].request_index)]);
        ++i;
      }
      const std::vector<WireResponse> expected = engine.DecideBatch(asked);
      for (size_t k = 0; k < expected.size(); ++k) {
        if (EncodeResponsePayload(expected[k]) != frames[first + k].payload) {
          std::cerr << "bench_serving_chaos: corrupted decision (connection " << c
                    << " segment " << segment << " request "
                    << frames[first + k].request_index << ")\n";
          return false;
        }
      }
    }
  }
  return true;
}

int RunLevel(const DecisionEngine& engine, const ChaosBenchOptions& bench,
             const std::string& name, double rate, LevelResult* out) {
  AdServerOptions server_options;
  server_options.max_sessions = bench.connections + 8;
  // Deadlines generous enough that CI scheduling noise can never trip them —
  // the sweep machinery still runs every round.
  server_options.idle_timeout_ms = 30'000;
  server_options.write_stall_ms = 30'000;
  // Server chaos: outcome-preserving faults only. A server-side cut would
  // destroy a decision in flight; that failure mode is the chaos battery's
  // business (tests/serve/chaos_test.cc), not a throughput bench's.
  server_options.chaos_seed = kServerChaosSeed;
  server_options.chaos.partial_write_rate = rate;
  server_options.chaos.dribble_read_rate = rate;
  server_options.chaos.stall_rate = rate;
  server_options.chaos.stall_ms = 1.0;

  AdServer server(engine, server_options);
  if (const Status started = server.Start(); !started.ok()) {
    std::cerr << "bench_serving_chaos: " << started.ToString() << "\n";
    return 1;
  }
  std::thread server_thread([&server] { server.Run(); });

  LoadGenOptions load;
  load.port = server.port();
  load.connections = bench.connections;
  load.requests_per_connection = bench.requests;
  load.client_count = engine.num_clients();
  load.seed = bench.seed;
  load.capture_responses = true;
  // Retry budget sized so the fault plan can never exhaust it (nine
  // independently-decided cuts in a row at rate 0.2 ≈ 5e-7): every request
  // is re-earned, none abandoned.
  load.retry_max = 8;
  load.backoff_ms = 1;
  load.backoff_cap_ms = 16;
  // Client chaos: the outcome-changing faults live here, where the retry
  // machinery owns recovery.
  load.chaos_seed = kClientChaosSeed;
  load.chaos.cut_rate = rate;
  load.chaos.connect_failure_rate = rate / 2.0;
  load.chaos.partial_write_rate = rate;
  load.chaos.dribble_read_rate = rate;
  load.chaos.stall_rate = rate;
  load.chaos.stall_ms = 1.0;

  LatencyHistogram latency;
  const Status run = RunLoadGen(load, latency, &out->report);
  server.RequestDrain();
  server_thread.join();
  if (!run.ok()) {
    std::cerr << "bench_serving_chaos: " << run.ToString() << "\n";
    return 1;
  }

  const LoadGenReport& report = out->report;
  const int64_t want =
      static_cast<int64_t>(bench.connections) * bench.requests;
  if (report.responses != want || report.abandoned != 0 || report.errors != 0) {
    std::cerr << "bench_serving_chaos: lossy run at chaos=" << rate
              << " (responses=" << report.responses << "/" << want
              << " abandoned=" << report.abandoned << " errors=" << report.errors
              << ")\n";
    return 1;
  }
  if (!VerifySegments(engine, load, report)) {
    return 1;
  }

  // Order-independent decision digest over the captured payloads. Fresh
  // sessions on reconnect make the exact bytes a function of where the fault
  // plan cut each stream, so every level pins its own digest.
  uint64_t digest = 0;
  for (const auto& connection : report.captured_frames) {
    uint64_t connection_digest = 14695981039346656037ull;
    for (const auto& frame : connection) {
      connection_digest = Fnv1a(frame.payload, connection_digest);
    }
    digest += connection_digest;
  }
  out->name = name;
  out->rate = rate;
  out->digest = digest;
  out->p50_us = static_cast<double>(latency.ValueAtQuantile(0.50)) / 1000.0;
  out->p99_us = static_cast<double>(latency.ValueAtQuantile(0.99)) / 1000.0;
  out->p999_us = static_cast<double>(latency.ValueAtQuantile(0.999)) / 1000.0;
  out->goodput_rps =
      report.wall_s > 0.0 ? static_cast<double>(report.responses) / report.wall_s : 0.0;
  return 0;
}

int Run(const ChaosBenchOptions& bench, bench::BenchJson& json) {
  const std::string label_base = "users=" + std::to_string(bench.users) +
                                 " connections=" + std::to_string(bench.connections) +
                                 " requests=" + std::to_string(bench.requests);
  PrintBanner(std::cout, "E23: serving under chaos (" + label_base + ")");

  const ServeConfig config = DefaultServeConfig(bench.users);
  StatusOr<std::unique_ptr<DecisionEngine>> engine = DecisionEngine::Create(config);
  if (!engine.ok()) {
    std::cerr << "bench_serving_chaos: " << engine.status().ToString() << "\n";
    return 1;
  }

  const std::vector<std::pair<std::string, double>> levels = {
      {"none", 0.0}, {"low", 0.05}, {"high", 0.2}};
  std::vector<LevelResult> results(levels.size());
  for (size_t i = 0; i < levels.size(); ++i) {
    const int status =
        RunLevel(**engine, bench, levels[i].first, levels[i].second, &results[i]);
    if (status != 0) {
      return status;
    }
  }

  // Cross-level contracts.
  const LevelResult& none = results[0];
  if (none.report.retries != 0 || none.report.reconnects != 0 ||
      none.report.chaos_cuts != 0 || none.report.chaos_connect_failures != 0) {
    std::cerr << "bench_serving_chaos: chaos events fired at rate 0\n";
    return 1;
  }
  for (size_t i = 1; i < results.size(); ++i) {
    const LoadGenReport& lower = results[i - 1].report;
    const LoadGenReport& higher = results[i].report;
    if (higher.chaos_cuts <= lower.chaos_cuts ||
        higher.chaos_connect_failures < lower.chaos_connect_failures ||
        higher.retries < lower.retries || higher.reconnects < lower.reconnects) {
      std::cerr << "bench_serving_chaos: degradation not monotone (" << results[i].name
                << " vs " << results[i - 1].name << ")\n";
      return 1;
    }
  }

  TextTable table({"chaos", "responses", "retries", "reconn", "cuts", "refused", "p50 us",
                   "p99 us", "goodput"});
  for (const LevelResult& level : results) {
    table.AddRow({level.name, std::to_string(level.report.responses),
                  std::to_string(level.report.retries),
                  std::to_string(level.report.reconnects),
                  std::to_string(level.report.chaos_cuts),
                  std::to_string(level.report.chaos_connect_failures),
                  FormatDouble(level.p50_us, 1), FormatDouble(level.p99_us, 1),
                  FormatDouble(level.goodput_rps, 0) + " rps"});
  }
  table.Print(std::cout);
  for (const LevelResult& level : results) {
    std::cout << "decision digest (" << level.name << "): " << FormatDouble(Hi(level.digest), 0)
              << " / " << FormatDouble(Lo(level.digest), 0) << "\n";
  }

  for (const LevelResult& level : results) {
    const std::string label = label_base + " chaos=" + level.name;
    const LoadGenReport& report = level.report;
    // Deterministic rows: gated at zero tolerance by CI.
    json.Add("responses", static_cast<double>(report.responses), "count", label);
    json.Add("retries", static_cast<double>(report.retries), "count", label);
    json.Add("reconnects", static_cast<double>(report.reconnects), "count", label);
    json.Add("chaos_cuts", static_cast<double>(report.chaos_cuts), "count", label);
    json.Add("chaos_connect_failures",
             static_cast<double>(report.chaos_connect_failures), "count", label);
    json.Add("abandoned", static_cast<double>(report.abandoned), "count", label);
    json.Add("errors", static_cast<double>(report.errors), "count", label);
    json.Add("shed", static_cast<double>(report.shed), "count", label);
    json.Add("decision_digest_hi", Hi(level.digest), "u32", label);
    json.Add("decision_digest_lo", Lo(level.digest), "u32", label);
    // Wall-clock rows: reported, never gated.
    json.Add("p50_us", level.p50_us, "us", label);
    json.Add("p99_us", level.p99_us, "us", label);
    json.Add("p999_us", level.p999_us, "us", label);
    json.Add("qps", report.qps, "qps", label);
    json.Add("goodput_rps", level.goodput_rps, "rps", label);
    json.Add("wall_s", report.wall_s, "s", label);
  }
  return 0;
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  const pad::ChaosBenchOptions options = pad::OptionsFromArgv(argc, argv);
  pad::bench::BenchJson json(argc, argv, "serving_chaos");
  const int status = pad::Run(options, json);
  if (status != 0) {
    return status;
  }
  return json.Flush() ? 0 : 1;
}
