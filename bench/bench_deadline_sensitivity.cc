// E8 — Deadline sensitivity: advertisers' display deadline D is the paper's
// "short deadline" constraint. Shorter deadlines leave less room for the
// slot-arrival variance, so violations and rescue traffic rise; longer ones
// let a single replica ride out a quiet hour.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users) {
  PadConfig config = bench::StandardConfig(num_users);

  PrintBanner(std::cout, "E8: display deadline sweep (T = 1 h)");
  TextTable table(bench::MetricsHeader("deadline"));
  for (double deadline_min : {15.0, 30.0, 60.0, 120.0, 240.0}) {
    PadConfig point = config;
    point.deadline_s = deadline_min * kMinute;
    // Campaign deadlines are part of the generated inputs, so inputs are
    // rebuilt per point (the trace itself is seed-identical across points).
    const SimInputs inputs = GenerateInputs(point);
    const BaselineResult baseline = RunBaseline(point, inputs);
    const PadRunResult pad = RunPad(point, inputs);
    table.AddRow(
        bench::MetricsRow(FormatDouble(deadline_min, 0) + "min", baseline, pad));
  }
  table.Print(std::cout);

  std::cout << "\nNote: with D < T the sale epoch shrinks to D, so very short\n"
               "deadlines also mean more frequent (smaller) prefetch syncs.\n";
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250));
  return 0;
}
