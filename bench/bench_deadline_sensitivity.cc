// E8 — Deadline sensitivity: advertisers' display deadline D is the paper's
// "short deadline" constraint. Shorter deadlines leave less room for the
// slot-arrival variance, so violations and rescue traffic rise; longer ones
// let a single replica ride out a quiet hour.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users, const SweepOptions& sweep, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(num_users);

  PrintBanner(std::cout, "E8: display deadline sweep (T = 1 h)");
  // Campaign deadlines are part of the generated inputs, so each point is a
  // full (inputs + baseline + pad) job — exactly the RunComparisonMany shape
  // (the trace itself is seed-identical across points).
  const std::vector<double> deadlines_min = {15.0, 30.0, 60.0, 120.0, 240.0};
  std::vector<PadConfig> points;
  points.reserve(deadlines_min.size());
  for (double deadline_min : deadlines_min) {
    PadConfig point = config;
    point.deadline_s = deadline_min * kMinute;
    points.push_back(point);
  }
  const std::vector<Comparison> results = RunComparisonMany(points, sweep);

  TextTable table(bench::MetricsHeader("deadline"));
  for (size_t i = 0; i < points.size(); ++i) {
    table.AddRow(bench::MetricsRow(FormatDouble(deadlines_min[i], 0) + "min",
                                   results[i].baseline, results[i].pad));
    json.AddComparison("users=" + std::to_string(num_users) + " deadline_min=" +
                           FormatDouble(deadlines_min[i], 0),
                       results[i]);
  }
  table.Print(std::cout);

  std::cout << "\nNote: with D < T the sale epoch shrinks to D, so very short\n"
               "deadlines also mean more frequent (smaller) prefetch syncs.\n";
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "deadline_sensitivity");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250), pad::bench::SweepOptionsFromArgv(argc, argv),
           json);
  return json.Flush() ? 0 : 1;
}
