// E19 — Scheduler under skew: a heavy-cluster population (the first
// `skew_fraction` of users carry `skew_multiplier` times the session rate)
// concentrates simulation cost in the first markets — exactly the shape that
// starves a static market partition, where the worker owning the heavy
// prefix becomes the critical path while the rest idle. This harness runs
// the same skewed workload under both schedules (src/core/shard_engine.h)
// and reports the work-stealing win.
//
// Cost is measured per market on the thread CPU clock (ShardedComparison::
// market_busy_s), so the headline is *makespan*: the largest per-worker sum
// of market costs. Makespan is what wall clock becomes on a machine with
// enough cores; measuring it from thread-CPU time keeps the number faithful
// on an oversubscribed or single-core box, where raw wall clock of an
// 8-thread run measures the OS scheduler instead of ours. Wall times are
// reported too, but never gated.
//
// The two runs must also agree digest-for-digest — the bench doubles as an
// end-to-end check of the scheduler half of the determinism contract and
// exits non-zero on a mismatch, as it does when `--min_speedup` (the CI
// acceptance gate) is not met.
//
// The checked-in BENCH_skewed_population.json baseline comes from:
//
//   $ bench_skewed_population --json BENCH_skewed_population.json
//
// which runs the full-scale row (3200 users, heavy markets ~100x light) and
// the CI-sized row perf-smoke regenerates on every push.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/core/shard_engine.h"

namespace pad {
namespace {

struct SkewBenchCase {
  std::string name;
  int64_t users = 0;
  int64_t market_users = 0;
  double skew_fraction = 0.125;
  double skew_multiplier = 100.0;
  int workers = 8;
};

struct SkewBenchOptions {
  // Default: the checked-in baseline — full-scale acceptance row + CI row.
  // --ci_only keeps just the CI-sized row (what perf-smoke runs).
  bool ci_only = false;
  double min_speedup = 0.0;  // --min_speedup: fail below this stealing win.
};

SkewBenchOptions OptionsFromArgv(int argc, char** argv) {
  SkewBenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ci_only") == 0) {
      options.ci_only = true;
    } else if (std::strcmp(argv[i], "--min_speedup") == 0 && i + 1 < argc) {
      options.min_speedup = std::atof(argv[i + 1]);
    }
  }
  return options;
}

struct ScheduleRun {
  ShardedComparison result;
  double wall_s = 0.0;
  double makespan_s = 0.0;   // max over workers of sum(market_busy_s).
  double total_busy_s = 0.0;
  double imbalance = 1.0;    // makespan / (total / workers).
};

ScheduleRun RunSchedule(const PadConfig& config, const SkewBenchCase& bench_case,
                        ScheduleMode schedule) {
  ShardEngineOptions options;
  options.shards = bench_case.workers;
  options.threads = bench_case.workers;
  options.schedule = schedule;
  options.event_digests = false;
  PAD_CHECK(ValidateShardOptions(config, options).empty());

  ScheduleRun run;
  const auto start = std::chrono::steady_clock::now();
  run.result = RunShardedComparison(config, options);
  run.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  std::vector<double> worker_busy(static_cast<size_t>(run.result.workers_used), 0.0);
  for (int m = 0; m < run.result.num_markets; ++m) {
    const int worker = run.result.market_workers[static_cast<size_t>(m)];
    PAD_CHECK(worker >= 0 && worker < run.result.workers_used);
    worker_busy[static_cast<size_t>(worker)] += run.result.market_busy_s[static_cast<size_t>(m)];
  }
  for (double busy : worker_busy) {
    run.makespan_s = std::max(run.makespan_s, busy);
    run.total_busy_s += busy;
  }
  const double ideal = run.total_busy_s / static_cast<double>(run.result.workers_used);
  run.imbalance = ideal > 0.0 ? run.makespan_s / ideal : 1.0;
  return run;
}

int RunCase(const SkewBenchCase& bench_case, double min_speedup, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(static_cast<int>(bench_case.users));
  config.population.horizon_s = 9.0 * kDay;  // 7 warmup + 2 scored.
  config.market_users = bench_case.market_users;
  config.population.skew_heavy_fraction = bench_case.skew_fraction;
  config.population.skew_rate_multiplier = bench_case.skew_multiplier;

  const std::string label = "users=" + std::to_string(bench_case.users) +
                            " market_users=" + std::to_string(bench_case.market_users) +
                            " skew=" + FormatDouble(bench_case.skew_fraction, 3) + "x" +
                            FormatDouble(bench_case.skew_multiplier, 0) +
                            " workers=" + std::to_string(bench_case.workers);
  PrintBanner(std::cout, "E19: work stealing under skew (" + bench_case.name + ": " + label + ")");

  const ScheduleRun fixed = RunSchedule(config, bench_case, ScheduleMode::kStatic);
  const ScheduleRun stealing = RunSchedule(config, bench_case, ScheduleMode::kStealing);

  // The schedule is execution-only: a digest divergence here is a scheduler
  // bug, not a perf regression.
  if (fixed.result.combined_pad_digest != stealing.result.combined_pad_digest ||
      fixed.result.combined_baseline_digest != stealing.result.combined_baseline_digest) {
    std::cerr << "bench_skewed_population: static and stealing runs diverged\n";
    return 1;
  }

  const double speedup = stealing.makespan_s > 0.0 ? fixed.makespan_s / stealing.makespan_s : 0.0;
  const double users_per_sec =
      static_cast<double>(stealing.result.total_users) / stealing.wall_s;

  TextTable table({"metric", "static", "stealing"});
  table.AddRow({"makespan (thread-CPU)", FormatDouble(fixed.makespan_s, 2) + " s",
                FormatDouble(stealing.makespan_s, 2) + " s"});
  table.AddRow({"imbalance (makespan/ideal)", FormatDouble(fixed.imbalance, 2),
                FormatDouble(stealing.imbalance, 2)});
  table.AddRow({"total busy", FormatDouble(fixed.total_busy_s, 2) + " s",
                FormatDouble(stealing.total_busy_s, 2) + " s"});
  table.AddRow({"wall (this box)", FormatDouble(fixed.wall_s, 2) + " s",
                FormatDouble(stealing.wall_s, 2) + " s"});
  table.AddRow({"markets stolen", "0", std::to_string(stealing.result.tasks_stolen)});
  table.Print(std::cout);
  std::cout << "steal_speedup (static makespan / stealing makespan): "
            << FormatDouble(speedup, 2) << "x\n";

  // Deterministic rows (tight tolerance in the gate) ...
  json.AddComparison(label, stealing.result.totals);
  json.Add("sessions", static_cast<double>(stealing.result.total_sessions), "count", label);
  // ... and the scheduler rows. Makespans and speedup are thread-CPU based,
  // so they are stable enough to gate with a wide tolerance; wall times are
  // box noise and stay ignored in CI.
  json.Add("static_makespan_s", fixed.makespan_s, "s", label);
  json.Add("stealing_makespan_s", stealing.makespan_s, "s", label);
  json.Add("steal_speedup", speedup, "ratio", label);
  json.Add("static_imbalance", fixed.imbalance, "ratio", label);
  json.Add("stealing_imbalance", stealing.imbalance, "ratio", label);
  json.Add("tasks_stolen", static_cast<double>(stealing.result.tasks_stolen), "count", label);
  json.Add("users_per_sec", users_per_sec, "users/s", label);
  json.Add("wall_static_s", fixed.wall_s, "s", label);
  json.Add("wall_stealing_s", stealing.wall_s, "s", label);

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cerr << "bench_skewed_population: steal_speedup " << FormatDouble(speedup, 2)
              << " below required " << FormatDouble(min_speedup, 2) << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  const pad::SkewBenchOptions options = pad::OptionsFromArgv(argc, argv);
  pad::bench::BenchJson json(argc, argv, "skewed_population");

  std::vector<pad::SkewBenchCase> cases;
  if (!options.ci_only) {
    // Acceptance scale: 32 markets, the first 4 carrying ~100x the cost; a
    // static 8-worker split hands all four to worker 0.
    pad::SkewBenchCase full;
    full.name = "full";
    full.users = 3200;
    full.market_users = 100;
    cases.push_back(full);
  }
  // CI scale: same shape (32 markets, 4 heavy at ~100x), an eighth the users.
  pad::SkewBenchCase ci;
  ci.name = "ci";
  ci.users = 640;
  ci.market_users = 20;
  cases.push_back(ci);

  for (const pad::SkewBenchCase& bench_case : cases) {
    const int status = pad::RunCase(bench_case, options.min_speedup, json);
    if (status != 0) {
      return status;
    }
  }
  return json.Flush() ? 0 : 1;
}
