// E2 — Tail-energy anatomy: energy per ad download versus refresh interval,
// per radio technology. Reproduces the paper's core observation that a
// few-KB ad costs ~10 J on 3G because of the RRC tail, and that back-to-back
// fetches amortize it while spaced fetches pay it in full.
#include "bench/bench_util.h"

#include <vector>

#include "src/radio/machine.h"

namespace pad {
namespace {

double EnergyPerAd(const RadioProfile& profile, double interval_s, int count) {
  std::vector<Transfer> transfers;
  transfers.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    transfers.push_back(Transfer{.request_time = static_cast<double>(i) * interval_s,
                                 .bytes = 3.0 * kKiB,
                                 .direction = Direction::kDownlink,
                                 .category = TrafficCategory::kAdFetch});
  }
  const EnergyReport report = SimulateTransfers(profile, transfers, 1e9);
  return report.total_energy_j() / count;
}

void Run(bench::BenchJson& json) {
  const std::vector<RadioProfile> profiles = {ThreeGProfile(), LteProfile(), WifiProfile()};
  const std::vector<double> intervals = {5.0,  15.0,  30.0,  60.0,
                                         120.0, 300.0, 600.0};
  const int kAds = 200;

  PrintBanner(std::cout, "E2: energy per 3 KiB ad vs refresh interval (J/ad)");
  TextTable table({"interval_s", "3g", "lte", "wifi"});
  for (double interval : intervals) {
    std::vector<std::string> row = {FormatDouble(interval, 0)};
    for (const RadioProfile& profile : profiles) {
      row.push_back(FormatDouble(EnergyPerAd(profile, interval, kAds), 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "E2: isolated fetch vs bulk prefetch of 20 ads");
  TextTable bulk({"radio", "20_spaced_30s_J", "one_bulk_J", "ratio"});
  for (const RadioProfile& profile : profiles) {
    const double spaced = 20.0 * EnergyPerAd(profile, 30.0, 20);
    const std::vector<Transfer> one = {Transfer{.request_time = 0.0,
                                                .bytes = 20.0 * 3.0 * kKiB,
                                                .direction = Direction::kDownlink,
                                                .category = TrafficCategory::kAdPrefetch}};
    const double bulk_j = SimulateTransfers(profile, one, 1e9).total_energy_j();
    bulk.AddRow({profile.name, FormatDouble(spaced, 1), FormatDouble(bulk_j, 1),
                 FormatDouble(spaced / bulk_j, 1) + "x"});
  }
  bulk.Print(std::cout);

  PrintBanner(std::cout, "E2: single isolated ad fetch (paper: ~10 J on 3G)");
  TextTable isolated({"radio", "energy_J"});
  for (const RadioProfile& profile : profiles) {
    const double energy_j = profile.IsolatedTransferEnergy(3.0 * kKiB, false);
    isolated.AddRow({profile.name, FormatDouble(energy_j, 2)});
    json.Add("isolated_ad_fetch_j", energy_j, "J", "radio=" + std::string(profile.name));
  }
  isolated.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "tail_energy");
  pad::Run(json);
  return json.Flush() ? 0 : 1;
}
