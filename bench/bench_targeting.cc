// E13 (extension) — Ad targeting vs prefetching: the paper flags audience
// targeting as the constraint on replication ("an ad can only be replicated
// to clients it targets"). This harness sweeps how much of the market is
// targeted and how narrow the targeting is, measuring what that costs the
// prefetching system relative to an untargeted market.
#include "bench/bench_util.h"

namespace pad {
namespace {

void Run(int num_users, bench::BenchJson& json) {
  PadConfig config = bench::StandardConfig(num_users);
  config.population.num_segments = 8;

  PrintBanner(std::cout, "E13: fraction of campaigns targeted (8 segments, selectivity 0.25)");
  TextTable fraction_table(bench::MetricsHeader("targeted_frac"));
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    PadConfig point = config;
    point.campaigns.targeted_fraction = fraction;
    point.campaigns.segment_selectivity = 0.25;
    const SimInputs inputs = GenerateInputs(point);
    const BaselineResult baseline = RunBaseline(point, inputs);
    const PadRunResult pad = RunPad(point, inputs);
    fraction_table.AddRow(bench::MetricsRow(FormatDouble(fraction, 2), baseline, pad));
    json.AddComparison("users=" + std::to_string(num_users) + " targeted_frac=" +
                           FormatDouble(fraction, 2),
                       Comparison{baseline, pad});
  }
  fraction_table.Print(std::cout);

  PrintBanner(std::cout, "E13: targeting selectivity (all campaigns targeted)");
  TextTable selectivity_table(bench::MetricsHeader("selectivity"));
  for (double selectivity : {0.60, 0.40, 0.25, 0.125}) {
    PadConfig point = config;
    point.campaigns.targeted_fraction = 1.0;
    point.campaigns.segment_selectivity = selectivity;
    const SimInputs inputs = GenerateInputs(point);
    const BaselineResult baseline = RunBaseline(point, inputs);
    const PadRunResult pad = RunPad(point, inputs);
    selectivity_table.AddRow(bench::MetricsRow(FormatDouble(selectivity, 3), baseline, pad));
  }
  selectivity_table.Print(std::cout);

  PrintBanner(std::cout, "E13: frequency caps and budgets (untargeted market)");
  TextTable extras(bench::MetricsHeader("market"));
  {
    PadConfig point = config;
    point.population.num_segments = 1;
    const SimInputs inputs = GenerateInputs(point);
    extras.AddRow(bench::MetricsRow("plain", RunBaseline(point, inputs), RunPad(point, inputs)));
  }
  {
    PadConfig point = config;
    point.population.num_segments = 1;
    point.campaigns.capped_fraction = 0.5;
    point.campaigns.frequency_cap_per_day = 2;
    const SimInputs inputs = GenerateInputs(point);
    extras.AddRow(
        bench::MetricsRow("50% capped", RunBaseline(point, inputs), RunPad(point, inputs)));
  }
  {
    PadConfig point = config;
    point.population.num_segments = 1;
    point.campaigns.budgeted_fraction = 0.5;
    const SimInputs inputs = GenerateInputs(point);
    extras.AddRow(
        bench::MetricsRow("50% budgeted", RunBaseline(point, inputs), RunPad(point, inputs)));
  }
  extras.Print(std::cout);
}

}  // namespace
}  // namespace pad

int main(int argc, char** argv) {
  pad::bench::BenchJson json(argc, argv, "targeting");
  pad::Run(pad::bench::UsersFromArgv(argc, argv, 250), json);
  return json.Flush() ? 0 : 1;
}
