# Empty dependencies file for bench_prediction_noise.
# This may be replaced when dependencies are built.
