file(REMOVE_RECURSE
  "CMakeFiles/bench_prediction_noise.dir/bench_prediction_noise.cc.o"
  "CMakeFiles/bench_prediction_noise.dir/bench_prediction_noise.cc.o.d"
  "bench_prediction_noise"
  "bench_prediction_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
