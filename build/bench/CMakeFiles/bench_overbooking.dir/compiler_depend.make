# Empty compiler generated dependencies file for bench_overbooking.
# This may be replaced when dependencies are built.
