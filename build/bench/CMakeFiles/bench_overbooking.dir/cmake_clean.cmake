file(REMOVE_RECURSE
  "CMakeFiles/bench_overbooking.dir/bench_overbooking.cc.o"
  "CMakeFiles/bench_overbooking.dir/bench_overbooking.cc.o.d"
  "bench_overbooking"
  "bench_overbooking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overbooking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
