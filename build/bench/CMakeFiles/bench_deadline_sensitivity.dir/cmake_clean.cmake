file(REMOVE_RECURSE
  "CMakeFiles/bench_deadline_sensitivity.dir/bench_deadline_sensitivity.cc.o"
  "CMakeFiles/bench_deadline_sensitivity.dir/bench_deadline_sensitivity.cc.o.d"
  "bench_deadline_sensitivity"
  "bench_deadline_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadline_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
