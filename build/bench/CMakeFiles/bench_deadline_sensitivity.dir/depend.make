# Empty dependencies file for bench_deadline_sensitivity.
# This may be replaced when dependencies are built.
