# Empty dependencies file for bench_prefetch_savings.
# This may be replaced when dependencies are built.
