file(REMOVE_RECURSE
  "CMakeFiles/bench_prefetch_savings.dir/bench_prefetch_savings.cc.o"
  "CMakeFiles/bench_prefetch_savings.dir/bench_prefetch_savings.cc.o.d"
  "bench_prefetch_savings"
  "bench_prefetch_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefetch_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
