file(REMOVE_RECURSE
  "CMakeFiles/bench_population_scale.dir/bench_population_scale.cc.o"
  "CMakeFiles/bench_population_scale.dir/bench_population_scale.cc.o.d"
  "bench_population_scale"
  "bench_population_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_population_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
