# Empty compiler generated dependencies file for bench_population_scale.
# This may be replaced when dependencies are built.
