# Empty dependencies file for bench_wifi_offload.
# This may be replaced when dependencies are built.
