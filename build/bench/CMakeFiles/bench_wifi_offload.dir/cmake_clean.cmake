file(REMOVE_RECURSE
  "CMakeFiles/bench_wifi_offload.dir/bench_wifi_offload.cc.o"
  "CMakeFiles/bench_wifi_offload.dir/bench_wifi_offload.cc.o.d"
  "bench_wifi_offload"
  "bench_wifi_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wifi_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
