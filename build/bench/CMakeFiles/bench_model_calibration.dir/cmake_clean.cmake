file(REMOVE_RECURSE
  "CMakeFiles/bench_model_calibration.dir/bench_model_calibration.cc.o"
  "CMakeFiles/bench_model_calibration.dir/bench_model_calibration.cc.o.d"
  "bench_model_calibration"
  "bench_model_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
