# Empty compiler generated dependencies file for bench_model_calibration.
# This may be replaced when dependencies are built.
