file(REMOVE_RECURSE
  "CMakeFiles/bench_radio_model.dir/bench_radio_model.cc.o"
  "CMakeFiles/bench_radio_model.dir/bench_radio_model.cc.o.d"
  "bench_radio_model"
  "bench_radio_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_radio_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
