# Empty compiler generated dependencies file for bench_radio_model.
# This may be replaced when dependencies are built.
