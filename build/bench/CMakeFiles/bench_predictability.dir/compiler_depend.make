# Empty compiler generated dependencies file for bench_predictability.
# This may be replaced when dependencies are built.
