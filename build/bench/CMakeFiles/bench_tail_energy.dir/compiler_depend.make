# Empty compiler generated dependencies file for bench_tail_energy.
# This may be replaced when dependencies are built.
