file(REMOVE_RECURSE
  "CMakeFiles/bench_tail_energy.dir/bench_tail_energy.cc.o"
  "CMakeFiles/bench_tail_energy.dir/bench_tail_energy.cc.o.d"
  "bench_tail_energy"
  "bench_tail_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tail_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
