# Empty dependencies file for bench_trace_characterization.
# This may be replaced when dependencies are built.
