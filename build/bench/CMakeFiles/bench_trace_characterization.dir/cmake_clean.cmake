file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_characterization.dir/bench_trace_characterization.cc.o"
  "CMakeFiles/bench_trace_characterization.dir/bench_trace_characterization.cc.o.d"
  "bench_trace_characterization"
  "bench_trace_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
