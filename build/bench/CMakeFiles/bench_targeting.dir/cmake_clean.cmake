file(REMOVE_RECURSE
  "CMakeFiles/bench_targeting.dir/bench_targeting.cc.o"
  "CMakeFiles/bench_targeting.dir/bench_targeting.cc.o.d"
  "bench_targeting"
  "bench_targeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_targeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
