
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_targeting.cc" "bench/CMakeFiles/bench_targeting.dir/bench_targeting.cc.o" "gcc" "bench/CMakeFiles/bench_targeting.dir/bench_targeting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/overbook/CMakeFiles/pad_overbook.dir/DependInfo.cmake"
  "/root/repo/build/src/auction/CMakeFiles/pad_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/prediction/CMakeFiles/pad_prediction.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pad_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pad_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/pad_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
