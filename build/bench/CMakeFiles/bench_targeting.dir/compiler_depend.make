# Empty compiler generated dependencies file for bench_targeting.
# This may be replaced when dependencies are built.
