file(REMOVE_RECURSE
  "CMakeFiles/adpad_sim.dir/adpad_sim.cc.o"
  "CMakeFiles/adpad_sim.dir/adpad_sim.cc.o.d"
  "adpad_sim"
  "adpad_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adpad_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
