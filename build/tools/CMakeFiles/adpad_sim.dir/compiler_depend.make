# Empty compiler generated dependencies file for adpad_sim.
# This may be replaced when dependencies are built.
