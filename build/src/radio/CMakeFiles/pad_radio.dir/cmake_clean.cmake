file(REMOVE_RECURSE
  "CMakeFiles/pad_radio.dir/machine.cc.o"
  "CMakeFiles/pad_radio.dir/machine.cc.o.d"
  "CMakeFiles/pad_radio.dir/profile.cc.o"
  "CMakeFiles/pad_radio.dir/profile.cc.o.d"
  "libpad_radio.a"
  "libpad_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
