# Empty compiler generated dependencies file for pad_radio.
# This may be replaced when dependencies are built.
