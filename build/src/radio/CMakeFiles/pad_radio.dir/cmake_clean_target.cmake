file(REMOVE_RECURSE
  "libpad_radio.a"
)
