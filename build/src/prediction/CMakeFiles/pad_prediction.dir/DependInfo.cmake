
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prediction/evaluation.cc" "src/prediction/CMakeFiles/pad_prediction.dir/evaluation.cc.o" "gcc" "src/prediction/CMakeFiles/pad_prediction.dir/evaluation.cc.o.d"
  "/root/repo/src/prediction/predictors.cc" "src/prediction/CMakeFiles/pad_prediction.dir/predictors.cc.o" "gcc" "src/prediction/CMakeFiles/pad_prediction.dir/predictors.cc.o.d"
  "/root/repo/src/prediction/slot_series.cc" "src/prediction/CMakeFiles/pad_prediction.dir/slot_series.cc.o" "gcc" "src/prediction/CMakeFiles/pad_prediction.dir/slot_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pad_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/pad_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pad_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
