# Empty dependencies file for pad_prediction.
# This may be replaced when dependencies are built.
