file(REMOVE_RECURSE
  "libpad_prediction.a"
)
