file(REMOVE_RECURSE
  "CMakeFiles/pad_prediction.dir/evaluation.cc.o"
  "CMakeFiles/pad_prediction.dir/evaluation.cc.o.d"
  "CMakeFiles/pad_prediction.dir/predictors.cc.o"
  "CMakeFiles/pad_prediction.dir/predictors.cc.o.d"
  "CMakeFiles/pad_prediction.dir/slot_series.cc.o"
  "CMakeFiles/pad_prediction.dir/slot_series.cc.o.d"
  "libpad_prediction.a"
  "libpad_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
