file(REMOVE_RECURSE
  "libpad_core.a"
)
