file(REMOVE_RECURSE
  "CMakeFiles/pad_core.dir/ad_cache.cc.o"
  "CMakeFiles/pad_core.dir/ad_cache.cc.o.d"
  "CMakeFiles/pad_core.dir/event_log.cc.o"
  "CMakeFiles/pad_core.dir/event_log.cc.o.d"
  "CMakeFiles/pad_core.dir/metrics.cc.o"
  "CMakeFiles/pad_core.dir/metrics.cc.o.d"
  "CMakeFiles/pad_core.dir/pad_client.cc.o"
  "CMakeFiles/pad_core.dir/pad_client.cc.o.d"
  "CMakeFiles/pad_core.dir/pad_server.cc.o"
  "CMakeFiles/pad_core.dir/pad_server.cc.o.d"
  "CMakeFiles/pad_core.dir/pad_simulation.cc.o"
  "CMakeFiles/pad_core.dir/pad_simulation.cc.o.d"
  "CMakeFiles/pad_core.dir/wifi_policy.cc.o"
  "CMakeFiles/pad_core.dir/wifi_policy.cc.o.d"
  "libpad_core.a"
  "libpad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
