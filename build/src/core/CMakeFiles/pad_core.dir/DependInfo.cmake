
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ad_cache.cc" "src/core/CMakeFiles/pad_core.dir/ad_cache.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/ad_cache.cc.o.d"
  "/root/repo/src/core/event_log.cc" "src/core/CMakeFiles/pad_core.dir/event_log.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/event_log.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/pad_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/pad_client.cc" "src/core/CMakeFiles/pad_core.dir/pad_client.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/pad_client.cc.o.d"
  "/root/repo/src/core/pad_server.cc" "src/core/CMakeFiles/pad_core.dir/pad_server.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/pad_server.cc.o.d"
  "/root/repo/src/core/pad_simulation.cc" "src/core/CMakeFiles/pad_core.dir/pad_simulation.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/pad_simulation.cc.o.d"
  "/root/repo/src/core/wifi_policy.cc" "src/core/CMakeFiles/pad_core.dir/wifi_policy.cc.o" "gcc" "src/core/CMakeFiles/pad_core.dir/wifi_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/pad_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pad_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pad_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/prediction/CMakeFiles/pad_prediction.dir/DependInfo.cmake"
  "/root/repo/build/src/auction/CMakeFiles/pad_auction.dir/DependInfo.cmake"
  "/root/repo/build/src/overbook/CMakeFiles/pad_overbook.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
