file(REMOVE_RECURSE
  "CMakeFiles/pad_trace.dir/generator.cc.o"
  "CMakeFiles/pad_trace.dir/generator.cc.o.d"
  "CMakeFiles/pad_trace.dir/trace_io.cc.o"
  "CMakeFiles/pad_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/pad_trace.dir/trace_stats.cc.o"
  "CMakeFiles/pad_trace.dir/trace_stats.cc.o.d"
  "CMakeFiles/pad_trace.dir/user_model.cc.o"
  "CMakeFiles/pad_trace.dir/user_model.cc.o.d"
  "libpad_trace.a"
  "libpad_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
