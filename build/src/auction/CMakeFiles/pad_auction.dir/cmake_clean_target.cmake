file(REMOVE_RECURSE
  "libpad_auction.a"
)
