
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auction/auction.cc" "src/auction/CMakeFiles/pad_auction.dir/auction.cc.o" "gcc" "src/auction/CMakeFiles/pad_auction.dir/auction.cc.o.d"
  "/root/repo/src/auction/campaign.cc" "src/auction/CMakeFiles/pad_auction.dir/campaign.cc.o" "gcc" "src/auction/CMakeFiles/pad_auction.dir/campaign.cc.o.d"
  "/root/repo/src/auction/exchange.cc" "src/auction/CMakeFiles/pad_auction.dir/exchange.cc.o" "gcc" "src/auction/CMakeFiles/pad_auction.dir/exchange.cc.o.d"
  "/root/repo/src/auction/ledger.cc" "src/auction/CMakeFiles/pad_auction.dir/ledger.cc.o" "gcc" "src/auction/CMakeFiles/pad_auction.dir/ledger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
