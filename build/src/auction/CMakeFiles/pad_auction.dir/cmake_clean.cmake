file(REMOVE_RECURSE
  "CMakeFiles/pad_auction.dir/auction.cc.o"
  "CMakeFiles/pad_auction.dir/auction.cc.o.d"
  "CMakeFiles/pad_auction.dir/campaign.cc.o"
  "CMakeFiles/pad_auction.dir/campaign.cc.o.d"
  "CMakeFiles/pad_auction.dir/exchange.cc.o"
  "CMakeFiles/pad_auction.dir/exchange.cc.o.d"
  "CMakeFiles/pad_auction.dir/ledger.cc.o"
  "CMakeFiles/pad_auction.dir/ledger.cc.o.d"
  "libpad_auction.a"
  "libpad_auction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_auction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
