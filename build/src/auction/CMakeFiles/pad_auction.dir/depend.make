# Empty dependencies file for pad_auction.
# This may be replaced when dependencies are built.
