# Empty compiler generated dependencies file for pad_common.
# This may be replaced when dependencies are built.
