file(REMOVE_RECURSE
  "CMakeFiles/pad_common.dir/csv.cc.o"
  "CMakeFiles/pad_common.dir/csv.cc.o.d"
  "CMakeFiles/pad_common.dir/options.cc.o"
  "CMakeFiles/pad_common.dir/options.cc.o.d"
  "CMakeFiles/pad_common.dir/rng.cc.o"
  "CMakeFiles/pad_common.dir/rng.cc.o.d"
  "CMakeFiles/pad_common.dir/stats.cc.o"
  "CMakeFiles/pad_common.dir/stats.cc.o.d"
  "CMakeFiles/pad_common.dir/table.cc.o"
  "CMakeFiles/pad_common.dir/table.cc.o.d"
  "libpad_common.a"
  "libpad_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
