file(REMOVE_RECURSE
  "libpad_common.a"
)
