file(REMOVE_RECURSE
  "libpad_sim.a"
)
