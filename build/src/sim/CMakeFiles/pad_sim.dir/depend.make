# Empty dependencies file for pad_sim.
# This may be replaced when dependencies are built.
