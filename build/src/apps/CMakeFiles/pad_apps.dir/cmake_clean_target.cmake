file(REMOVE_RECURSE
  "libpad_apps.a"
)
