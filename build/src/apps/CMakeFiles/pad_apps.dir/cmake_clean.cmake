file(REMOVE_RECURSE
  "CMakeFiles/pad_apps.dir/app_profile.cc.o"
  "CMakeFiles/pad_apps.dir/app_profile.cc.o.d"
  "CMakeFiles/pad_apps.dir/workload.cc.o"
  "CMakeFiles/pad_apps.dir/workload.cc.o.d"
  "libpad_apps.a"
  "libpad_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
