
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_profile.cc" "src/apps/CMakeFiles/pad_apps.dir/app_profile.cc.o" "gcc" "src/apps/CMakeFiles/pad_apps.dir/app_profile.cc.o.d"
  "/root/repo/src/apps/workload.cc" "src/apps/CMakeFiles/pad_apps.dir/workload.cc.o" "gcc" "src/apps/CMakeFiles/pad_apps.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pad_common.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/pad_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pad_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
