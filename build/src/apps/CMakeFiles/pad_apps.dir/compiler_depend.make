# Empty compiler generated dependencies file for pad_apps.
# This may be replaced when dependencies are built.
