file(REMOVE_RECURSE
  "CMakeFiles/pad_overbook.dir/display_model.cc.o"
  "CMakeFiles/pad_overbook.dir/display_model.cc.o.d"
  "CMakeFiles/pad_overbook.dir/poisson_binomial.cc.o"
  "CMakeFiles/pad_overbook.dir/poisson_binomial.cc.o.d"
  "CMakeFiles/pad_overbook.dir/replication_planner.cc.o"
  "CMakeFiles/pad_overbook.dir/replication_planner.cc.o.d"
  "libpad_overbook.a"
  "libpad_overbook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pad_overbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
