file(REMOVE_RECURSE
  "libpad_overbook.a"
)
