# Empty compiler generated dependencies file for pad_overbook.
# This may be replaced when dependencies are built.
