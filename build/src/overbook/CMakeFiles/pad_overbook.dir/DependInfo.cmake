
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overbook/display_model.cc" "src/overbook/CMakeFiles/pad_overbook.dir/display_model.cc.o" "gcc" "src/overbook/CMakeFiles/pad_overbook.dir/display_model.cc.o.d"
  "/root/repo/src/overbook/poisson_binomial.cc" "src/overbook/CMakeFiles/pad_overbook.dir/poisson_binomial.cc.o" "gcc" "src/overbook/CMakeFiles/pad_overbook.dir/poisson_binomial.cc.o.d"
  "/root/repo/src/overbook/replication_planner.cc" "src/overbook/CMakeFiles/pad_overbook.dir/replication_planner.cc.o" "gcc" "src/overbook/CMakeFiles/pad_overbook.dir/replication_planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pad_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
