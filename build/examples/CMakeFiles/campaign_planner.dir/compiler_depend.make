# Empty compiler generated dependencies file for campaign_planner.
# This may be replaced when dependencies are built.
