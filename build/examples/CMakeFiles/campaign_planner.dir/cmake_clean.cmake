file(REMOVE_RECURSE
  "CMakeFiles/campaign_planner.dir/campaign_planner.cpp.o"
  "CMakeFiles/campaign_planner.dir/campaign_planner.cpp.o.d"
  "campaign_planner"
  "campaign_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
