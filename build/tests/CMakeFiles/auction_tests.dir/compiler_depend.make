# Empty compiler generated dependencies file for auction_tests.
# This may be replaced when dependencies are built.
