file(REMOVE_RECURSE
  "CMakeFiles/auction_tests.dir/auction/auction_test.cc.o"
  "CMakeFiles/auction_tests.dir/auction/auction_test.cc.o.d"
  "CMakeFiles/auction_tests.dir/auction/campaign_test.cc.o"
  "CMakeFiles/auction_tests.dir/auction/campaign_test.cc.o.d"
  "CMakeFiles/auction_tests.dir/auction/exchange_test.cc.o"
  "CMakeFiles/auction_tests.dir/auction/exchange_test.cc.o.d"
  "CMakeFiles/auction_tests.dir/auction/ledger_test.cc.o"
  "CMakeFiles/auction_tests.dir/auction/ledger_test.cc.o.d"
  "CMakeFiles/auction_tests.dir/auction/targeting_test.cc.o"
  "CMakeFiles/auction_tests.dir/auction/targeting_test.cc.o.d"
  "auction_tests"
  "auction_tests.pdb"
  "auction_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
