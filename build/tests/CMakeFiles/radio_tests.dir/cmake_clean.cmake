file(REMOVE_RECURSE
  "CMakeFiles/radio_tests.dir/radio/machine_test.cc.o"
  "CMakeFiles/radio_tests.dir/radio/machine_test.cc.o.d"
  "CMakeFiles/radio_tests.dir/radio/profile_test.cc.o"
  "CMakeFiles/radio_tests.dir/radio/profile_test.cc.o.d"
  "radio_tests"
  "radio_tests.pdb"
  "radio_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/radio_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
