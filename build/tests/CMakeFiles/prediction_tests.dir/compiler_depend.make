# Empty compiler generated dependencies file for prediction_tests.
# This may be replaced when dependencies are built.
