file(REMOVE_RECURSE
  "CMakeFiles/prediction_tests.dir/prediction/evaluation_test.cc.o"
  "CMakeFiles/prediction_tests.dir/prediction/evaluation_test.cc.o.d"
  "CMakeFiles/prediction_tests.dir/prediction/markov_weekly_test.cc.o"
  "CMakeFiles/prediction_tests.dir/prediction/markov_weekly_test.cc.o.d"
  "CMakeFiles/prediction_tests.dir/prediction/predictors_test.cc.o"
  "CMakeFiles/prediction_tests.dir/prediction/predictors_test.cc.o.d"
  "CMakeFiles/prediction_tests.dir/prediction/slot_series_test.cc.o"
  "CMakeFiles/prediction_tests.dir/prediction/slot_series_test.cc.o.d"
  "prediction_tests"
  "prediction_tests.pdb"
  "prediction_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prediction_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
