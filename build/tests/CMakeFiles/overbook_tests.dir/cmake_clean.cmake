file(REMOVE_RECURSE
  "CMakeFiles/overbook_tests.dir/overbook/display_model_test.cc.o"
  "CMakeFiles/overbook_tests.dir/overbook/display_model_test.cc.o.d"
  "CMakeFiles/overbook_tests.dir/overbook/poisson_binomial_test.cc.o"
  "CMakeFiles/overbook_tests.dir/overbook/poisson_binomial_test.cc.o.d"
  "CMakeFiles/overbook_tests.dir/overbook/replication_planner_test.cc.o"
  "CMakeFiles/overbook_tests.dir/overbook/replication_planner_test.cc.o.d"
  "overbook_tests"
  "overbook_tests.pdb"
  "overbook_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overbook_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
