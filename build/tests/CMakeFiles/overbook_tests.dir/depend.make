# Empty dependencies file for overbook_tests.
# This may be replaced when dependencies are built.
