file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/ad_cache_test.cc.o"
  "CMakeFiles/core_tests.dir/core/ad_cache_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/config_test.cc.o"
  "CMakeFiles/core_tests.dir/core/config_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/event_log_test.cc.o"
  "CMakeFiles/core_tests.dir/core/event_log_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/metrics_test.cc.o"
  "CMakeFiles/core_tests.dir/core/metrics_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/pad_client_test.cc.o"
  "CMakeFiles/core_tests.dir/core/pad_client_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/pad_server_test.cc.o"
  "CMakeFiles/core_tests.dir/core/pad_server_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/pad_simulation_test.cc.o"
  "CMakeFiles/core_tests.dir/core/pad_simulation_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/targeting_dispatch_test.cc.o"
  "CMakeFiles/core_tests.dir/core/targeting_dispatch_test.cc.o.d"
  "CMakeFiles/core_tests.dir/core/wifi_policy_test.cc.o"
  "CMakeFiles/core_tests.dir/core/wifi_policy_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
